// End-to-end tests for the mobsrv_serve service loop (serve/service.hpp):
//   * the acceptance e2e — two tenants (k = 1 and k = 4) streamed in
//     batches, periodically checkpointed, killed mid-stream, restored, fed
//     the remainder: outcome frames and final totals are bit-identical to
//     an uninterrupted service;
//   * bounded in-flight queues bounce with explicit `busy` frames;
//   * malformed frames close only the offending tenant, never the process;
//   * admission failures reject the candidate only;
//   * tenant churn (open/close) between periodic saves restores to a
//     consistent tenant table;
//   * snapshot corruption/truncation fails loudly on restore.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "algorithms/registry.hpp"
#include "fault/injector.hpp"
#include "io/json.hpp"
#include "obs/journal.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "trace/checkpoint.hpp"

namespace mobsrv {
namespace {

namespace fs = std::filesystem;
using geo::Point;
using serve::ExitReason;
using serve::Service;
using serve::ServiceOptions;

std::string open_line(const std::string& tenant, const std::string& algorithm, int dim,
                      std::size_t k = 1, std::uint64_t seed = 0) {
  io::Json doc = io::Json::object();
  doc.set("type", "open");
  doc.set("v", serve::kProtocolVersion);
  doc.set("tenant", tenant);
  doc.set("algorithm", algorithm);
  doc.set("seed", seed);
  doc.set("dim", dim);
  doc.set("k", k);
  doc.set("speed", 1.5);
  return doc.dump();
}

std::string req_line(const std::string& tenant, const std::vector<Point>& requests) {
  io::Json doc = io::Json::object();
  doc.set("type", "req");
  doc.set("tenant", tenant);
  io::Json batch = io::Json::array();
  for (const Point& p : requests) {
    io::Json coords = io::Json::array();
    for (int i = 0; i < p.dim(); ++i) coords.push_back(p[i]);
    batch.push_back(std::move(coords));
  }
  doc.set("batch", std::move(batch));
  return doc.dump();
}

/// Deterministic request stream: step t carries t % 3 requests with awkward
/// (non-dyadic) coordinates, so costs exercise real floating point.
std::vector<std::vector<Point>> make_batches(std::uint64_t seed, std::size_t steps, int dim) {
  std::vector<std::vector<Point>> batches(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t r = 0; r < t % 3; ++r) {
      Point p(dim);
      for (int c = 0; c < dim; ++c) {
        const std::uint64_t h = (seed + 1) * 6364136223846793005ULL +
                                t * 1442695040888963407ULL + r * 2862933555777941757ULL +
                                static_cast<std::uint64_t>(c) * 3935559000370003845ULL;
        p[c] = static_cast<double>(h % 2000) / 300.0 - 3.3;
      }
      batches[t].push_back(p);
    }
  }
  return batches;
}

struct RunOutput {
  ExitReason reason = ExitReason::kEof;
  std::vector<io::Json> frames;
};

RunOutput run_lines(Service& service, const std::vector<std::string>& lines) {
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  std::istringstream in(input);
  std::ostringstream out;
  RunOutput result;
  result.reason = service.run(in, out);
  std::istringstream parse(out.str());
  std::string line;
  while (std::getline(parse, line))
    if (!line.empty()) result.frames.push_back(io::Json::parse(line));
  return result;
}

std::vector<io::Json> frames_of_type(const RunOutput& run, const std::string& type) {
  std::vector<io::Json> out;
  for (const io::Json& frame : run.frames)
    if (frame.at("type").as_string() == type) out.push_back(frame);
  return out;
}

/// This tenant's outcome frames, re-serialised — exact string equality is
/// the bit-identity check.
std::vector<std::string> outcomes_of(const RunOutput& run, const std::string& tenant) {
  std::vector<std::string> out;
  for (const io::Json& frame : run.frames)
    if (frame.at("type").as_string() == "outcome" && frame.at("tenant").as_string() == tenant)
      out.push_back(frame.dump());
  return out;
}

class ServeServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_serve_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// The acceptance e2e: checkpoint, kill, restore, bit-identical remainder.
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, KillAndRestoreContinuesBitIdentically) {
  constexpr std::size_t kSteps = 40;
  constexpr std::size_t kCut = 23;
  const std::string fleet_algo = alg::fleet_native_names().front();
  const auto alpha = make_batches(1, kSteps, 2);
  const auto bravo = make_batches(2, kSteps, 2);

  const auto feed = [&](std::vector<std::string>& lines, std::size_t from, std::size_t to) {
    for (std::size_t t = from; t < to; ++t) {
      lines.push_back(req_line("alpha", alpha[t]));
      lines.push_back(req_line("bravo", bravo[t]));
    }
  };
  const auto opens = [&](std::vector<std::string>& lines) {
    lines.push_back(open_line("alpha", "MtC", 2, 1, 11));
    lines.push_back(open_line("bravo", fleet_algo, 2, 4, 22));
  };

  // Reference: one service, never interrupted.
  ServiceOptions ref_options;
  ref_options.threads = 2;
  Service reference(ref_options);
  std::vector<std::string> ref_lines;
  opens(ref_lines);
  feed(ref_lines, 0, kSteps);
  ref_lines.push_back(R"({"type":"shutdown"})");
  const RunOutput ref = run_lines(reference, ref_lines);
  ASSERT_EQ(ref.reason, ExitReason::kShutdown);
  ASSERT_EQ(frames_of_type(ref, "error").size(), 0u);
  ASSERT_EQ(outcomes_of(ref, "alpha").size(), kSteps);
  ASSERT_EQ(outcomes_of(ref, "bravo").size(), kSteps);

  // Interrupted: half the stream, an explicit checkpoint, then a hard kill.
  const fs::path snapshot = dir_ / "svc.msrvss";
  ServiceOptions options;
  options.threads = 2;
  options.snapshot_path = snapshot;
  Service first(options);
  std::vector<std::string> first_lines;
  opens(first_lines);
  feed(first_lines, 0, kCut);
  first_lines.push_back(R"({"type":"checkpoint"})");
  first_lines.push_back(R"({"type":"kill"})");
  const RunOutput half = run_lines(first, first_lines);
  EXPECT_EQ(half.reason, ExitReason::kKill);
  EXPECT_EQ(frames_of_type(half, "bye").size(), 0u) << "kill skips the graceful path";
  ASSERT_EQ(frames_of_type(half, "checkpointed").size(), 1u);
  ASSERT_TRUE(fs::exists(snapshot));

  // A fresh process restores and consumes the remainder.
  Service second(options);
  second.restore(snapshot);
  EXPECT_EQ(second.mux().size(), 2u);
  std::vector<std::string> rest_lines;
  feed(rest_lines, kCut, kSteps);
  rest_lines.push_back(R"({"type":"shutdown"})");
  const RunOutput rest = run_lines(second, rest_lines);
  ASSERT_EQ(rest.reason, ExitReason::kShutdown);
  ASSERT_EQ(frames_of_type(rest, "error").size(), 0u);

  // Outcome frames concatenate to exactly the uninterrupted stream.
  for (const std::string tenant : {"alpha", "bravo"}) {
    std::vector<std::string> stitched = outcomes_of(half, tenant);
    const std::vector<std::string> tail = outcomes_of(rest, tenant);
    stitched.insert(stitched.end(), tail.begin(), tail.end());
    EXPECT_EQ(stitched, outcomes_of(ref, tenant)) << tenant;
  }

  // And the final engine state agrees bit-for-bit.
  const std::vector<core::SessionStats> want = reference.mux().snapshot();
  const std::vector<core::SessionStats> got = second.mux().snapshot();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t s = 0; s < want.size(); ++s) {
    EXPECT_EQ(got[s].tenant, want[s].tenant);
    EXPECT_EQ(got[s].steps, want[s].steps);
    EXPECT_EQ(got[s].total_cost, want[s].total_cost);
    EXPECT_EQ(got[s].move_cost, want[s].move_cost);
    EXPECT_EQ(got[s].service_cost, want[s].service_cost);
    EXPECT_EQ(got[s].positions, want[s].positions);
  }
}

TEST_F(ServeServiceTest, PeriodicCheckpointsFireAtQuiescentPoints) {
  const fs::path snapshot = dir_ / "periodic.msrvss";
  ServiceOptions options;
  options.snapshot_path = snapshot;
  options.checkpoint_every = 3;
  options.max_inflight = 2;  // small cap forces pumps mid-burst
  Service service(options);

  const auto batches = make_batches(5, 10, 1);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 1));
  for (const auto& batch : batches) lines.push_back(req_line("alpha", batch));
  lines.push_back(R"({"type":"shutdown"})");
  const RunOutput run = run_lines(service, lines);
  ASSERT_EQ(run.reason, ExitReason::kShutdown);

  // Cadence saves during the burst, plus the forced save on shutdown.
  EXPECT_GE(frames_of_type(run, "checkpointed").size(), 2u);
  // Every req was either consumed (outcome) or bounced (busy) — no drops.
  const std::size_t outcomes = outcomes_of(run, "alpha").size();
  const std::size_t busy = frames_of_type(run, "busy").size();
  EXPECT_EQ(outcomes + busy, batches.size());
  EXPECT_GT(busy, 0u);

  // The final snapshot restores to the fully drained state.
  Service restored(options);
  restored.restore(snapshot);
  EXPECT_EQ(restored.mux().stats(0).steps, outcomes);
  EXPECT_EQ(restored.mux().stats(0).total_cost, service.mux().stats(0).total_cost);
}

// ---------------------------------------------------------------------------
// Backpressure.
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, FullQueueBouncesWithExplicitBusyFrames) {
  ServiceOptions options;
  options.max_inflight = 2;
  Service service(options);

  const auto batches = make_batches(7, 7, 1);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 1));
  for (const auto& batch : batches) lines.push_back(req_line("alpha", batch));
  lines.push_back(R"({"type":"shutdown"})");
  const RunOutput run = run_lines(service, lines);
  ASSERT_EQ(run.reason, ExitReason::kShutdown);

  const std::vector<io::Json> busy = frames_of_type(run, "busy");
  ASSERT_GT(busy.size(), 0u);
  for (const io::Json& frame : busy) {
    EXPECT_EQ(frame.at("tenant").as_string(), "alpha");
    EXPECT_EQ(frame.at("limit").as_uint64(), 2u);
    EXPECT_GE(frame.at("queued").as_uint64(), 2u);
    EXPECT_GT(frame.at("line").as_uint64(), 1u);
  }
  EXPECT_EQ(outcomes_of(run, "alpha").size() + busy.size(), batches.size());
}

// ---------------------------------------------------------------------------
// Error isolation.
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, MalformedFrameClosesOnlyTheOffendingTenant) {
  Service service(ServiceOptions{});
  const std::vector<std::string> lines = {
      open_line("alpha", "MtC", 1),                          // line 1
      open_line("bravo", "Lazy", 1),                         // line 2
      req_line("alpha", {Point{0.5}}),                       // line 3
      req_line("bravo", {Point{0.25}}),                      // line 4
      R"({"type":"req","tenant":"alpha","batc":[[1]]})",     // line 5: typo'd member
      req_line("alpha", {Point{0.75}}),                      // line 6: alpha is gone now
      req_line("bravo", {Point{0.125}}),                     // line 7: bravo unaffected
      R"({"type":"shutdown"})",                              // line 8
  };
  const RunOutput run = run_lines(service, lines);
  ASSERT_EQ(run.reason, ExitReason::kShutdown) << "one bad tenant never kills the process";

  const std::vector<io::Json> errors = frames_of_type(run, "error");
  ASSERT_EQ(errors.size(), 2u);
  // The typo closes alpha, with the offending line number.
  EXPECT_EQ(errors[0].at("line").as_uint64(), 5u);
  EXPECT_EQ(errors[0].at("tenant").as_string(), "alpha");
  EXPECT_TRUE(errors[0].at("closed").as_bool());
  EXPECT_NE(errors[0].at("message").as_string().find("unknown member"), std::string::npos);
  // The follow-up req to the closed tenant is an unattached error.
  EXPECT_EQ(errors[1].at("line").as_uint64(), 6u);
  EXPECT_FALSE(errors[1].at("closed").as_bool());

  // Alpha's accepted step still produced its outcome, then a final bill.
  EXPECT_EQ(outcomes_of(run, "alpha").size(), 1u);
  const std::vector<io::Json> closed = frames_of_type(run, "closed");
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].at("tenant").as_string(), "alpha");
  EXPECT_EQ(closed[0].at("steps").as_uint64(), 1u);
  // Bravo streamed through untouched.
  EXPECT_EQ(outcomes_of(run, "bravo").size(), 2u);
}

TEST_F(ServeServiceTest, UnattributableGarbageClosesNothing) {
  Service service(ServiceOptions{});
  const RunOutput run = run_lines(service, {
                                               open_line("alpha", "MtC", 1),
                                               "{this is not json",
                                               req_line("alpha", {Point{1.0}}),
                                               R"({"type":"shutdown"})",
                                           });
  ASSERT_EQ(run.reason, ExitReason::kShutdown);
  const std::vector<io::Json> errors = frames_of_type(run, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("line").as_uint64(), 2u);
  EXPECT_EQ(errors[0].find("tenant"), nullptr);
  EXPECT_EQ(outcomes_of(run, "alpha").size(), 1u) << "alpha survived the garbage line";
  EXPECT_EQ(frames_of_type(run, "closed").size(), 0u);
}

TEST_F(ServeServiceTest, AdmissionFailuresRejectTheCandidateOnly) {
  Service service(ServiceOptions{});
  const RunOutput run = run_lines(service, {
                                               open_line("alpha", "MtC", 1, 1, 7),
                                               open_line("alpha", "Lazy", 1),   // duplicate name
                                               open_line("bad", "NoSuchAlgo", 1),
                                               open_line("worse", "MtC", 1, 4),  // k=4 needs fleet-native
                                               req_line("alpha", {Point{2.0}}),
                                               R"({"type":"shutdown"})",
                                           });
  ASSERT_EQ(run.reason, ExitReason::kShutdown);
  ASSERT_EQ(frames_of_type(run, "opened").size(), 1u);
  const std::vector<io::Json> errors = frames_of_type(run, "error");
  ASSERT_EQ(errors.size(), 3u);
  for (const io::Json& frame : errors) EXPECT_FALSE(frame.at("closed").as_bool());
  EXPECT_NE(errors[0].at("message").as_string().find("already open"), std::string::npos);
  // The original alpha is untouched and still serving.
  EXPECT_EQ(outcomes_of(run, "alpha").size(), 1u);
  EXPECT_EQ(service.mux().size(), 1u);
}

TEST_F(ServeServiceTest, OpenedFrameEchoesTheAdmittedSpecWithDefaults) {
  Service service(ServiceOptions{});
  const RunOutput run =
      run_lines(service, {open_line("alpha", "MtC", 2), R"({"type":"shutdown"})"});
  const std::vector<io::Json> opened = frames_of_type(run, "opened");
  ASSERT_EQ(opened.size(), 1u);
  EXPECT_EQ(opened[0].at("k").as_uint64(), 1u);
  EXPECT_EQ(opened[0].at("policy").as_string(), "clamp");
  EXPECT_EQ(opened[0].at("order").as_string(), "move-then-serve");
  ASSERT_EQ(opened[0].at("starts").as_array().size(), 1u);
}

// ---------------------------------------------------------------------------
// Close / stats frames.
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, CloseDrainsAndReportsTheFinalBill) {
  Service service(ServiceOptions{});
  const auto batches = make_batches(3, 4, 1);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 1));
  for (const auto& batch : batches) lines.push_back(req_line("alpha", batch));
  lines.push_back(R"({"type":"close","tenant":"alpha"})");
  lines.push_back(req_line("alpha", {Point{1.0}}));  // closed → unknown tenant
  lines.push_back(R"({"type":"stats"})");
  lines.push_back(R"({"type":"shutdown"})");
  const RunOutput run = run_lines(service, lines);
  ASSERT_EQ(run.reason, ExitReason::kShutdown);

  EXPECT_EQ(outcomes_of(run, "alpha").size(), batches.size());
  const std::vector<io::Json> closed = frames_of_type(run, "closed");
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].at("steps").as_uint64(), batches.size());
  EXPECT_EQ(closed[0].at("total").as_double(),
            closed[0].at("move").as_double() + closed[0].at("service").as_double());

  const std::vector<io::Json> errors = frames_of_type(run, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].at("message").as_string().find("unknown tenant"), std::string::npos);

  // The closed tenant's accounting survives in stats and the farewell.
  const std::vector<io::Json> stats = frames_of_type(run, "stats");
  ASSERT_EQ(stats.size(), 1u);
  ASSERT_EQ(stats[0].at("tenants").as_array().size(), 1u);
  EXPECT_TRUE(stats[0].at("tenants").as_array()[0].at("closed").as_bool());
  EXPECT_EQ(stats[0].at("steps").as_uint64(), batches.size());
  const std::vector<io::Json> bye = frames_of_type(run, "bye");
  ASSERT_EQ(bye.size(), 1u);
  EXPECT_EQ(bye[0].at("reason").as_string(), "shutdown");
  EXPECT_EQ(bye[0].at("sessions").as_uint64(), 1u);
}

TEST_F(ServeServiceTest, CheckpointFrameWithoutSnapshotPathIsALoudNoOp) {
  Service service(ServiceOptions{});
  const RunOutput run = run_lines(service, {R"({"type":"checkpoint"})"});
  ASSERT_EQ(run.reason, ExitReason::kEof);
  const std::vector<io::Json> errors = frames_of_type(run, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].at("message").as_string().find("disabled"), std::string::npos);
}

TEST_F(ServeServiceTest, PresetStopFlagDrainsGracefully) {
  std::atomic<bool> stop{true};
  ServiceOptions options;
  options.stop = &stop;
  Service service(options);
  const RunOutput run = run_lines(service, {open_line("alpha", "MtC", 1)});
  EXPECT_EQ(run.reason, ExitReason::kSignal);
  ASSERT_EQ(run.frames.size(), 1u) << "nothing processed after the stop flag";
  EXPECT_EQ(run.frames[0].at("type").as_string(), "bye");
  EXPECT_EQ(run.frames[0].at("reason").as_string(), "signal");
}

// ---------------------------------------------------------------------------
// Tenant churn racing periodic saves (the restart surface stays consistent).
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, ChurnedTenantTableRestoresConsistently) {
  const fs::path snapshot = dir_ / "churn.msrvss";
  ServiceOptions options;
  options.snapshot_path = snapshot;
  const auto alpha = make_batches(11, 5, 1);
  const auto bravo = make_batches(12, 7, 1);

  // Reference for bravo: an uninterrupted lone run of the same stream.
  Service reference(ServiceOptions{});
  std::vector<std::string> ref_lines;
  ref_lines.push_back(open_line("bravo", "MoveToMin", 1, 1, 5));
  for (const auto& batch : bravo) ref_lines.push_back(req_line("bravo", batch));
  ref_lines.push_back(R"({"type":"shutdown"})");
  ASSERT_EQ(run_lines(reference, ref_lines).reason, ExitReason::kShutdown);

  // Churn: alpha opens, streams, and closes between saves; bravo persists.
  Service first(options);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 1, 1, 3));
  for (const auto& batch : alpha) lines.push_back(req_line("alpha", batch));
  lines.push_back(R"({"type":"checkpoint"})");  // save #1: alpha only
  lines.push_back(open_line("bravo", "MoveToMin", 1, 1, 5));
  for (std::size_t t = 0; t < 3; ++t) lines.push_back(req_line("bravo", bravo[t]));
  lines.push_back(R"({"type":"close","tenant":"alpha"})");
  lines.push_back(R"({"type":"checkpoint"})");  // save #2: bravo only
  lines.push_back(R"({"type":"kill"})");
  const RunOutput churn = run_lines(first, lines);
  ASSERT_EQ(churn.reason, ExitReason::kKill);
  ASSERT_EQ(frames_of_type(churn, "checkpointed").size(), 2u);

  // The restored table holds exactly the tenants open at the last save.
  Service second(options);
  second.restore(snapshot);
  ASSERT_EQ(second.mux().size(), 1u);
  EXPECT_EQ(second.mux().stats(0).tenant, "bravo");
  EXPECT_EQ(second.mux().stats(0).steps, 3u);

  // A NEW tenant may reuse the closed name, and bravo finishes bit-identically.
  std::vector<std::string> rest;
  rest.push_back(open_line("alpha", "Lazy", 1));
  for (std::size_t t = 3; t < bravo.size(); ++t) rest.push_back(req_line("bravo", bravo[t]));
  rest.push_back(R"({"type":"shutdown"})");
  const RunOutput tail = run_lines(second, rest);
  ASSERT_EQ(tail.reason, ExitReason::kShutdown);
  ASSERT_EQ(frames_of_type(tail, "opened").size(), 1u);

  const core::SessionStats got = second.mux().stats(0);
  const core::SessionStats want = reference.mux().stats(0);
  EXPECT_EQ(got.steps, want.steps);
  EXPECT_EQ(got.total_cost, want.total_cost);
  EXPECT_EQ(got.move_cost, want.move_cost);
  EXPECT_EQ(got.service_cost, want.service_cost);
  EXPECT_EQ(got.positions, want.positions);
}

// ---------------------------------------------------------------------------
// Snapshot integrity.
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, CorruptSnapshotsFailLoudlyOnRestore) {
  const fs::path snapshot = dir_ / "good.msrvss";
  ServiceOptions options;
  options.snapshot_path = snapshot;
  Service service(options);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 2, 1, 9));
  for (const auto& batch : make_batches(9, 6, 2)) lines.push_back(req_line("alpha", batch));
  lines.push_back(R"({"type":"shutdown"})");
  ASSERT_EQ(run_lines(service, lines).reason, ExitReason::kShutdown);
  ASSERT_TRUE(fs::exists(snapshot));

  std::ifstream in(snapshot, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const auto write_variant = [&](const std::string& name, const std::string& content) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    return path;
  };

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  std::string bad_version = bytes;
  bad_version[8] = 99;
  // Flip one payload byte of the (complete) base segment: the size fields
  // stay intact, so the reader sees a whole segment whose CRC lies.
  std::string bad_crc = bytes;
  bad_crc[bytes.size() / 2] ^= 0x01;
  for (const fs::path& path :
       {write_variant("magic", bad_magic), write_variant("version", bad_version),
        write_variant("trunc", bytes.substr(0, bytes.size() / 2)),
        write_variant("no-tag", bytes.substr(0, bytes.size() - 1)),
        write_variant("bad-crc", bad_crc), write_variant("empty", "")}) {
    Service fresh(options);
    EXPECT_THROW(fresh.restore(path), trace::TraceError) << path;
  }
  EXPECT_THROW(Service(options).restore(dir_ / "missing.msrvss"), trace::TraceError);

  // Trailing bytes that do not form a complete segment are a torn append
  // (a crash mid-delta), dropped by design: the chain up to them restores.
  {
    Service fresh(options);
    fresh.restore(write_variant("torn-append", bytes + "x"));
    EXPECT_EQ(fresh.mux().stats(0).total_cost, service.mux().stats(0).total_cost);
  }

  // The pristine file still restores.
  Service fresh(options);
  fresh.restore(snapshot);
  EXPECT_EQ(fresh.mux().stats(0).total_cost, service.mux().stats(0).total_cost);
}

TEST_F(ServeServiceTest, SnapshotSavesAreAtomic) {
  // Two consecutive saves leave no temp file behind and the second wins.
  const fs::path snapshot = dir_ / "atomic.msrvss";
  ServiceOptions options;
  options.snapshot_path = snapshot;
  Service service(options);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 1));
  lines.push_back(req_line("alpha", {Point{1.5}}));
  lines.push_back(R"({"type":"checkpoint"})");
  lines.push_back(req_line("alpha", {Point{-2.5}}));
  lines.push_back(R"({"type":"shutdown"})");
  ASSERT_EQ(run_lines(service, lines).reason, ExitReason::kShutdown);
  EXPECT_FALSE(fs::exists(snapshot.string() + ".tmp"));

  Service restored(options);
  restored.restore(snapshot);
  EXPECT_EQ(restored.mux().stats(0).steps, 2u) << "the shutdown-time save wins";
}

// ---------------------------------------------------------------------------
// Telemetry: metrics frames, enriched stats, the NDJSON snapshot file.
// ---------------------------------------------------------------------------

std::uint64_t metric_value(const io::Json& frame, const std::string& name) {
  for (const io::Json& metric : frame.at("metrics").as_array())
    if (metric.at("name").as_string() == name) return metric.at("value").as_uint64();
  ADD_FAILURE() << "metric " << name << " missing from frame";
  return 0;
}

/// reqs == outcomes + busys, both service-wide and per tenant — the serve
/// accounting invariant at any quiescent point (handle_metrics pumps
/// first, so a metrics frame IS a quiescent point).
void expect_req_invariant(const io::Json& metrics) {
  EXPECT_EQ(metric_value(metrics, "serve.reqs_total"),
            metric_value(metrics, "serve.outcomes_total") +
                metric_value(metrics, "serve.busys_total"));
  for (const io::Json& tenant : metrics.at("tenants").as_array())
    EXPECT_EQ(tenant.at("reqs").as_uint64(),
              tenant.at("outcomes").as_uint64() + tenant.at("busys").as_uint64())
        << tenant.at("tenant").as_string();
}

TEST_F(ServeServiceTest, MetricsFrameInvariantHoldsAcrossKillAndRestore) {
  constexpr std::size_t kSteps = 30;
  constexpr std::size_t kCut = 17;
  const auto alpha = make_batches(7, kSteps, 2);
  const auto bravo = make_batches(8, kSteps, 2);

  const fs::path snapshot = dir_ / "svc.msrvss";
  ServiceOptions options;
  options.snapshot_path = snapshot;
  options.max_inflight = 2;  // small cap: some reqs bounce, so busys > 0
  Service first(options);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 2, 1, 31));
  lines.push_back(open_line("bravo", alg::fleet_native_names().front(), 2, 4, 32));
  for (std::size_t t = 0; t < kCut; ++t) {
    lines.push_back(req_line("alpha", alpha[t]));
    lines.push_back(req_line("bravo", bravo[t]));
  }
  lines.push_back(R"({"type":"metrics"})");
  lines.push_back(R"({"type":"checkpoint"})");
  lines.push_back(R"({"type":"kill"})");
  const RunOutput half = run_lines(first, lines);
  ASSERT_EQ(half.reason, ExitReason::kKill);
  const auto half_metrics = frames_of_type(half, "metrics");
  ASSERT_EQ(half_metrics.size(), 1u);
  expect_req_invariant(half_metrics.front());
  EXPECT_EQ(metric_value(half_metrics.front(), "serve.tenants_opened_total"), 2u);
  EXPECT_EQ(metric_value(half_metrics.front(), "serve.tenants_open"), 2u);
  EXPECT_GT(metric_value(half_metrics.front(), "serve.reqs_total"), 0u);

  // Counters are process-local: the restored service starts fresh, and the
  // invariant must hold for the second process's own traffic too.
  Service second(options);
  second.restore(snapshot);
  std::vector<std::string> rest;
  const std::size_t resumed = second.mux().stats(0).steps;
  for (std::size_t t = resumed; t < kSteps; ++t) {
    rest.push_back(req_line("alpha", alpha[t]));
    rest.push_back(req_line("bravo", bravo[t]));
  }
  rest.push_back(R"({"type":"metrics"})");
  rest.push_back(R"({"type":"shutdown"})");
  const RunOutput done = run_lines(second, rest);
  ASSERT_EQ(done.reason, ExitReason::kShutdown);
  const auto done_metrics = frames_of_type(done, "metrics");
  ASSERT_EQ(done_metrics.size(), 1u);
  expect_req_invariant(done_metrics.front());
  // Restored tenants count toward the open gauge but not opened_total.
  EXPECT_EQ(metric_value(done_metrics.front(), "serve.tenants_opened_total"), 0u);
  EXPECT_EQ(metric_value(done_metrics.front(), "serve.tenants_open"), 2u);
  EXPECT_GT(metric_value(done_metrics.front(), "serve.outcomes_total"), 0u);
}

TEST_F(ServeServiceTest, StatsFrameKeepsV1FieldsAndAppendsTelemetry) {
  Service service(ServiceOptions{});
  // First run: accept + consume two steps (EOF drains). Second run: ask for
  // stats at a quiescent point, so the telemetry shows settled numbers.
  ASSERT_EQ(run_lines(service, {open_line("alpha", "MtC", 1),
                                req_line("alpha", {Point{1.5}}),
                                req_line("alpha", {Point{-0.5}})})
                .reason,
            ExitReason::kEof);
  const RunOutput run = run_lines(service, {R"({"type":"stats"})"});
  const auto stats = frames_of_type(run, "stats");
  ASSERT_EQ(stats.size(), 1u);
  const io::Json& frame = stats.front();

  // v1 members, unchanged names and meaning.
  for (const char* key : {"tenants", "sessions", "live", "steps", "move", "service", "total"})
    EXPECT_NE(frame.find(key), nullptr) << key;
  // Appended aggregate telemetry.
  EXPECT_NE(frame.find("queue_depth"), nullptr);
  EXPECT_NE(frame.find("step_latency_ns"), nullptr);
  EXPECT_NE(frame.find("steps_per_session"), nullptr);
  EXPECT_GT(frame.at("step_latency_ns").at("count").as_uint64(), 0u);

  const io::Json& row = frame.at("tenants").as_array().front();
  for (const char* key : {"tenant", "algorithm", "k", "steps", "move", "service", "total",
                          "closed", "queued", "reqs", "outcomes", "busys", "errors",
                          "inflight_hwm", "ingest_latency_ns"})
    EXPECT_NE(row.find(key), nullptr) << key;
  // stats frames do not quiesce, but by the time stats ran the stream had
  // paused, so both accepted steps were consumed and measured.
  EXPECT_EQ(row.at("reqs").as_uint64(), 2u);
  EXPECT_EQ(row.at("ingest_latency_ns").at("count").as_uint64(), 2u);
  EXPECT_GT(row.at("ingest_latency_ns").at("p99").as_uint64(), 0u);
}

TEST_F(ServeServiceTest, LeanModeKeepsCountersButSkipsClocks) {
  ServiceOptions options;
  options.lean = true;
  Service service(options);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 1));
  lines.push_back(req_line("alpha", {Point{1.5}}));
  lines.push_back(R"({"type":"metrics"})");
  lines.push_back(R"({"type":"shutdown"})");
  const RunOutput run = run_lines(service, lines);
  const auto metrics = frames_of_type(run, "metrics");
  ASSERT_EQ(metrics.size(), 1u);
  expect_req_invariant(metrics.front());
  EXPECT_EQ(metric_value(metrics.front(), "serve.reqs_total"), 1u);
  // Clock-free: no round timing, no ingest stamps.
  for (const io::Json& metric : metrics.front().at("metrics").as_array()) {
    const std::string name = metric.at("name").as_string();
    if (name == "serve.ingest_latency_ns" || name == "mux.step_latency_ns") {
      EXPECT_EQ(metric.at("count").as_uint64(), 0u) << name;
    }
  }
}

TEST_F(ServeServiceTest, MetricsOutWritesAtomicNdjsonSnapshot) {
  const fs::path metrics_path = dir_ / "metrics.ndjson";
  ServiceOptions options;
  options.metrics_path = metrics_path;
  Service service(options);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 2));
  for (const auto& batch : make_batches(9, 6, 2)) lines.push_back(req_line("alpha", batch));
  lines.push_back(R"({"type":"close","tenant":"alpha"})");
  lines.push_back(R"({"type":"shutdown"})");
  ASSERT_EQ(run_lines(service, lines).reason, ExitReason::kShutdown);
  ASSERT_TRUE(fs::exists(metrics_path));
  EXPECT_FALSE(fs::exists(metrics_path.string() + ".tmp"));

  std::size_t meta = 0, metric = 0, tenant = 0, event = 0;
  std::ifstream in(metrics_path);
  std::string line;
  while (std::getline(in, line)) {
    const io::Json doc = io::Json::parse(line);
    const std::string kind = doc.at("kind").as_string();
    if (kind == "meta") {
      ++meta;
      EXPECT_EQ(doc.at("v").as_uint64(), 1u);
      EXPECT_GT(doc.at("unix_ms").as_uint64(), 0u);
    } else if (kind == "metric") {
      ++metric;
    } else if (kind == "tenant") {
      ++tenant;
      // The closed tenant's row survives: per-tenant counters + percentiles.
      EXPECT_EQ(doc.at("tenant").as_string(), "alpha");
      EXPECT_TRUE(doc.at("closed").as_bool());
      EXPECT_EQ(doc.at("reqs").as_uint64(), 6u);
      EXPECT_EQ(doc.at("outcomes").as_uint64(), 6u);
      EXPECT_GT(doc.at("ingest_latency_ns").at("p50").as_uint64(), 0u);
    } else if (kind == "event") {
      ++event;
    } else {
      ADD_FAILURE() << "unknown kind " << kind;
    }
  }
  EXPECT_EQ(meta, 1u);
  EXPECT_GE(metric, 15u) << "every catalogued metric is in the snapshot";
  EXPECT_EQ(tenant, 1u);
  EXPECT_GE(event, 3u) << "open, close, drain at minimum";
}

// ---------------------------------------------------------------------------
// Incremental checkpoints: base + delta segments, compaction, resume.
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, IncrementalCheckpointsAppendDeltasAndCompact) {
  const fs::path snapshot = dir_ / "incremental.msrvss";
  ServiceOptions options;
  options.snapshot_path = snapshot;
  options.compact_ratio = 0.1;  // any appended delta triggers compaction
  Service service(options);

  const auto batches = make_batches(13, 12, 2);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 2, 1, 5));
  for (std::size_t t = 0; t < 4; ++t) lines.push_back(req_line("alpha", batches[t]));
  lines.push_back(R"({"type":"checkpoint"})");  // first save of the process: base
  for (std::size_t t = 4; t < 8; ++t) lines.push_back(req_line("alpha", batches[t]));
  lines.push_back(R"({"type":"checkpoint"})");  // incremental: delta append
  for (std::size_t t = 8; t < 12; ++t) lines.push_back(req_line("alpha", batches[t]));
  lines.push_back(R"({"type":"checkpoint"})");  // chain too long: compacts to a base
  lines.push_back(R"({"type":"shutdown"})");
  const RunOutput run = run_lines(service, lines);
  ASSERT_EQ(run.reason, ExitReason::kShutdown);

  const std::vector<io::Json> saves = frames_of_type(run, "checkpointed");
  ASSERT_GE(saves.size(), 4u);  // three explicit + the forced shutdown save
  EXPECT_EQ(saves[0].at("mode").as_string(), "base");
  EXPECT_EQ(saves[0].at("segments").as_uint64(), 1u);
  EXPECT_EQ(saves[1].at("mode").as_string(), "delta");
  EXPECT_EQ(saves[1].at("segments").as_uint64(), 2u);
  EXPECT_EQ(saves[2].at("mode").as_string(), "base");
  EXPECT_EQ(saves[2].at("segments").as_uint64(), 1u);
  for (const io::Json& save : saves) EXPECT_GT(save.at("bytes").as_uint64(), 0u);

  // The compaction is journaled as a service-wide event.
  bool compacted = false;
  for (const obs::Event& event : service.telemetry().journal().events())
    if (event.type == obs::EventType::kCompact) compacted = true;
  EXPECT_TRUE(compacted);

  // The compacted chain restores to the exact live state.
  Service restored(options);
  restored.restore(snapshot);
  EXPECT_EQ(restored.mux().stats(0).steps, service.mux().stats(0).steps);
  EXPECT_EQ(restored.mux().stats(0).total_cost, service.mux().stats(0).total_cost);
}

TEST_F(ServeServiceTest, ResumeFromBasePlusDeltaChainIsBitIdentical) {
  const fs::path snapshot = dir_ / "resume.msrvss";
  ServiceOptions options;
  options.snapshot_path = snapshot;
  const auto batches = make_batches(17, 18, 2);

  // Uninterrupted reference run.
  std::vector<std::string> all;
  all.push_back(open_line("alpha", "MtC", 2, 1, 3));
  for (const auto& batch : batches) all.push_back(req_line("alpha", batch));
  all.push_back(R"({"type":"shutdown"})");
  Service reference(ServiceOptions{});
  const RunOutput ref_run = run_lines(reference, all);
  ASSERT_EQ(outcomes_of(ref_run, "alpha").size(), batches.size());

  // Interrupted run: base save, delta save, then a kill (no shutdown save).
  Service first(options);
  std::vector<std::string> head;
  head.push_back(open_line("alpha", "MtC", 2, 1, 3));
  for (std::size_t t = 0; t < 6; ++t) head.push_back(req_line("alpha", batches[t]));
  head.push_back(R"({"type":"checkpoint"})");
  for (std::size_t t = 6; t < 12; ++t) head.push_back(req_line("alpha", batches[t]));
  head.push_back(R"({"type":"checkpoint"})");
  head.push_back(R"({"type":"kill"})");
  const RunOutput first_run = run_lines(first, head);
  ASSERT_EQ(first_run.reason, ExitReason::kKill);
  const auto saves = frames_of_type(first_run, "checkpointed");
  ASSERT_EQ(saves.size(), 2u);
  EXPECT_EQ(saves[0].at("mode").as_string(), "base");
  EXPECT_EQ(saves[1].at("mode").as_string(), "delta");
  const serve::SnapshotFileInfo info = serve::inspect_snapshot(snapshot);
  EXPECT_EQ(info.version, serve::kSnapshotVersionV2);
  EXPECT_EQ(info.segments, 2u) << "resume must replay base + delta";

  // Resume replays the chain; the remainder of the stream is bit-identical.
  Service second(options);
  second.restore(snapshot);
  std::vector<std::string> tail;
  for (std::size_t t = 12; t < batches.size(); ++t) tail.push_back(req_line("alpha", batches[t]));
  tail.push_back(R"({"type":"shutdown"})");
  const RunOutput second_run = run_lines(second, tail);

  std::vector<std::string> combined = outcomes_of(first_run, "alpha");
  for (const std::string& line : outcomes_of(second_run, "alpha")) combined.push_back(line);
  EXPECT_EQ(combined, outcomes_of(ref_run, "alpha"));
  EXPECT_EQ(second.mux().stats(0).total_cost, reference.mux().stats(0).total_cost);
}

// ---------------------------------------------------------------------------
// Per-tenant rate limits at the admission layer.
// ---------------------------------------------------------------------------

TEST_F(ServeServiceTest, RateLimitedTenantThrottlesWithJournalAttribution) {
  Service service(ServiceOptions{});
  io::Json open = io::Json::parse(open_line("slow", "MtC", 1, 1, 2));
  open.set("rate", 0.5);  // one step every other scheduler round
  std::vector<std::string> lines;
  lines.push_back(open.dump());
  for (const auto& batch : make_batches(3, 6, 1)) lines.push_back(req_line("slow", batch));
  ASSERT_EQ(run_lines(service, lines).reason, ExitReason::kEof);  // EOF drains

  // The opened frame echoes the admitted limit.
  EXPECT_EQ(service.mux().stats(0).steps, 6u);
  EXPECT_GT(service.mux().stats(0).throttled_rounds, 0u);
  EXPECT_GT(service.mux().totals().throttled, 0u);

  bool journaled = false;
  for (const obs::Event& event : service.telemetry().journal().events())
    if (event.type == obs::EventType::kThrottle) {
      journaled = true;
      EXPECT_EQ(event.tenant, "slow");
      EXPECT_NE(event.detail.find("rate"), std::string::npos);
    }
  EXPECT_TRUE(journaled);

  // The quiescent stats frame reports both new members.
  const RunOutput stats_run = run_lines(service, {R"({"type":"stats"})"});
  const auto stats = frames_of_type(stats_run, "stats");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].at("active_sessions").as_uint64(), service.mux().totals().active);
  EXPECT_EQ(stats[0].at("throttled").as_uint64(), service.mux().totals().throttled);
  const io::Json& row = stats[0].at("tenants").as_array().front();
  EXPECT_GT(row.at("throttled").as_uint64(), 0u);
}

TEST_F(ServeServiceTest, DefaultRateAppliesOnlyWhenOpenOmitsIt) {
  ServiceOptions options;
  options.default_rate = 2.0;
  Service service(options);
  io::Json custom = io::Json::parse(open_line("custom", "MtC", 1, 1, 1));
  custom.set("rate", 0.75);
  const RunOutput run = run_lines(
      service, {open_line("plain", "MtC", 1), custom.dump(), R"({"type":"shutdown"})"});
  const std::vector<io::Json> opened = frames_of_type(run, "opened");
  ASSERT_EQ(opened.size(), 2u);
  EXPECT_EQ(opened[0].at("tenant").as_string(), "plain");
  EXPECT_EQ(opened[0].at("rate").as_double(), 2.0);  // admission default applied
  EXPECT_EQ(opened[1].at("tenant").as_string(), "custom");
  EXPECT_EQ(opened[1].at("rate").as_double(), 0.75);  // explicit limit wins
}

// ---------------------------------------------------------------------------
// Fault tolerance: retries, degraded mode, idle reaping, startup hygiene.
// ---------------------------------------------------------------------------

std::vector<std::string> error_messages(const RunOutput& run) {
  std::vector<std::string> out;
  for (const io::Json& frame : frames_of_type(run, "error"))
    out.push_back(frame.at("message").as_string());
  return out;
}

std::size_t journal_count(const Service& service, obs::EventType type) {
  std::size_t n = 0;
  for (const obs::Event& event : service.telemetry().journal().events())
    if (event.type == type) ++n;
  return n;
}

TEST_F(ServeServiceTest, TransientSnapshotFaultsAreRetriedToSuccess) {
  // Two injected write failures, three retries budgeted: the save must land
  // on the third attempt with no error frame and no degraded episode.
  fault::Injector injector(1);
  fault::SiteRule rule;
  rule.site = fault::kSiteSnapshotBaseWrite;
  rule.every = 1;
  rule.count = 2;
  injector.add_rule(rule);
  ServiceOptions options;
  options.snapshot_path = dir_ / "retry.msrvss";
  options.faults = &injector;
  options.retry_limit = 3;
  options.retry_base_ms = 0;  // keep the test instant; jitter of 0 is 0
  Service service(options);
  const RunOutput run = run_lines(service, {open_line("alpha", "MtC", 1),
                                            req_line("alpha", {Point{1.5}}),
                                            R"({"type":"checkpoint"})",
                                            R"({"type":"metrics"})",
                                            R"({"type":"shutdown"})"});
  ASSERT_EQ(run.reason, ExitReason::kShutdown);
  EXPECT_TRUE(error_messages(run).empty());
  ASSERT_GE(frames_of_type(run, "checkpointed").size(), 1u);
  const auto metrics = frames_of_type(run, "metrics");
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metric_value(metrics.front(), "serve.retries_total"), 2u);
  EXPECT_EQ(metric_value(metrics.front(), "serve.degraded_total"), 0u);
  EXPECT_EQ(metric_value(metrics.front(), "serve.degraded"), 0u);
  EXPECT_EQ(journal_count(service, obs::EventType::kRetry), 2u);
  EXPECT_EQ(journal_count(service, obs::EventType::kDegraded), 0u);

  // The survived snapshot restores: the retried base was written atomically.
  Service restored(options);
  restored.restore(options.snapshot_path);
  EXPECT_EQ(restored.mux().stats(0).steps, 1u);
}

TEST_F(ServeServiceTest, ExhaustedRetriesEnterDegradedModeUntilASaveSucceeds) {
  // Six injected failures against a 2-attempt budget: saves 1-3 exhaust
  // their retries (one degraded EPISODE, not three), save 4 recovers.
  fault::Injector injector(2);
  fault::SiteRule rule;
  rule.site = fault::kSiteSnapshotBaseWrite;
  rule.every = 1;
  rule.count = 6;
  injector.add_rule(rule);
  ServiceOptions options;
  options.snapshot_path = dir_ / "degraded.msrvss";
  options.faults = &injector;
  options.retry_limit = 1;
  options.retry_base_ms = 0;
  Service service(options);
  const RunOutput run = run_lines(service, {open_line("alpha", "MtC", 1),
                                            req_line("alpha", {Point{1.5}}),
                                            R"({"type":"checkpoint"})",
                                            R"({"type":"checkpoint"})",
                                            R"({"type":"checkpoint"})",
                                            R"({"type":"stats"})",
                                            R"({"type":"metrics"})",
                                            R"({"type":"checkpoint"})",
                                            R"({"type":"metrics"})",
                                            R"({"type":"shutdown"})"});
  ASSERT_EQ(run.reason, ExitReason::kShutdown) << "degraded mode must keep serving";

  // Every exhausted save is loud, but the episode is counted once.
  const std::vector<std::string> errors = error_messages(run);
  ASSERT_EQ(errors.size(), 3u);
  for (const std::string& message : errors)
    EXPECT_NE(message.find("snapshot save failed: injected fault"), std::string::npos) << message;

  // Mid-outage: the stats frame and the gauge both say degraded.
  const auto stats = frames_of_type(run, "stats");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats.front().at("degraded").as_bool());
  const auto metrics = frames_of_type(run, "metrics");
  ASSERT_EQ(metrics.size(), 2u);
  expect_req_invariant(metrics.front());  // reqs == outcomes + busys held throughout
  EXPECT_EQ(metric_value(metrics[0], "serve.degraded"), 1u);
  EXPECT_EQ(metric_value(metrics[0], "serve.degraded_total"), 1u);
  EXPECT_EQ(metric_value(metrics[0], "serve.retries_total"), 3u);  // one per exhausted save

  // The fourth save succeeds: gauge drops, episode count stays at one.
  EXPECT_EQ(metric_value(metrics[1], "serve.degraded"), 0u);
  EXPECT_EQ(metric_value(metrics[1], "serve.degraded_total"), 1u);
  ASSERT_GE(frames_of_type(run, "checkpointed").size(), 1u);
  // Journal: enter + recovered, exactly one pair.
  EXPECT_EQ(journal_count(service, obs::EventType::kDegraded), 2u);
}

TEST_F(ServeServiceTest, FailedMetricsWriteJournalsAndContinues) {
  // --metrics-out hitting a dead disk must not kill the stream: the write
  // is retried, journaled as an error, and the service degrades instead.
  fault::Injector injector(3);
  fault::SiteRule rule;
  rule.site = fault::kSiteMetricsWrite;
  rule.every = 1;
  injector.add_rule(rule);
  ServiceOptions options;
  options.metrics_path = dir_ / "metrics.ndjson";
  options.metrics_every = 1;  // every step flushes, so the fault fires mid-run
  options.faults = &injector;
  options.retry_limit = 1;
  options.retry_base_ms = 0;
  Service service(options);
  const RunOutput run = run_lines(service, {open_line("alpha", "MtC", 1),
                                            req_line("alpha", {Point{1.5}}),
                                            R"({"type":"metrics"})",
                                            R"({"type":"shutdown"})"});
  ASSERT_EQ(run.reason, ExitReason::kShutdown);
  ASSERT_EQ(outcomes_of(run, "alpha").size(), 1u) << "the stream itself must keep flowing";

  const std::vector<std::string> errors = error_messages(run);
  ASSERT_GE(errors.size(), 1u);
  EXPECT_NE(errors.front().find("metrics snapshot failed: injected fault"), std::string::npos);
  EXPECT_FALSE(fs::exists(options.metrics_path.string() + ".tmp"));

  bool journaled = false;
  for (const obs::Event& event : service.telemetry().journal().events())
    if (event.type == obs::EventType::kError &&
        event.detail.find("metrics snapshot failed") != std::string::npos)
      journaled = true;
  EXPECT_TRUE(journaled);
  const auto metrics = frames_of_type(run, "metrics");
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metric_value(metrics.front(), "serve.degraded"), 1u);
}

TEST_F(ServeServiceTest, IdleTenantsAreReapedWithAttributedTimeout) {
  ServiceOptions options;
  options.idle_timeout = 3;  // input lines of silence
  Service service(options);
  std::vector<std::string> lines;
  lines.push_back(open_line("idle", "MtC", 1));
  lines.push_back(open_line("busy", "MtC", 1));
  for (const auto& batch : make_batches(5, 4, 1)) lines.push_back(req_line("busy", batch));
  lines.push_back(R"({"type":"metrics"})");
  lines.push_back(R"({"type":"shutdown"})");
  const RunOutput run = run_lines(service, lines);
  ASSERT_EQ(run.reason, ExitReason::kShutdown);

  // The reap is attributed: a fatal error frame naming the tenant, then the
  // standard closed frame with its final bill.
  const auto errors = frames_of_type(run, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().at("message").as_string().find("idle timeout"), std::string::npos);
  EXPECT_EQ(errors.front().at("tenant").as_string(), "idle");
  EXPECT_TRUE(errors.front().at("closed").as_bool());
  bool closed_idle = false;
  for (const io::Json& frame : frames_of_type(run, "closed"))
    if (frame.at("tenant").as_string() == "idle") closed_idle = true;
  EXPECT_TRUE(closed_idle);
  EXPECT_EQ(journal_count(service, obs::EventType::kTimeout), 1u);

  // The busy tenant was never touched.
  const auto metrics = frames_of_type(run, "metrics");
  ASSERT_EQ(metrics.size(), 1u);
  EXPECT_EQ(metric_value(metrics.front(), "serve.idle_timeouts_total"), 1u);
  EXPECT_EQ(metric_value(metrics.front(), "serve.tenants_open"), 1u);
  EXPECT_EQ(outcomes_of(run, "busy").size(), 4u);
}

TEST_F(ServeServiceTest, StaleTempFilesAreSweptOnStartup) {
  // A crash between "write tmp" and "rename" leaves a .tmp; the next boot
  // must not trip over it (or worse, let it grow forever).
  const fs::path snapshot = dir_ / "boot.msrvss";
  const fs::path metrics = dir_ / "boot.ndjson";
  for (const fs::path& stale : {fs::path(snapshot.string() + ".tmp"),
                                fs::path(metrics.string() + ".tmp")}) {
    std::ofstream out(stale, std::ios::binary);
    out << "torn half-write from a previous life";
  }
  ServiceOptions options;
  options.snapshot_path = snapshot;
  options.metrics_path = metrics;
  Service service(options);
  EXPECT_FALSE(fs::exists(snapshot.string() + ".tmp"));
  EXPECT_FALSE(fs::exists(metrics.string() + ".tmp"));
}

TEST_F(ServeServiceTest, ServeReadFaultIsObservationalTheLineStillLands) {
  // A kFail at serve.read reports the fault but must not drop the frame —
  // otherwise an every=1 plan would livelock the whole stream.
  fault::Injector injector(4);
  fault::SiteRule rule;
  rule.site = fault::kSiteServeRead;
  rule.nth = 2;  // the req line
  injector.add_rule(rule);
  ServiceOptions options;
  options.faults = &injector;
  Service service(options);
  const RunOutput run = run_lines(service, {open_line("alpha", "MtC", 1),
                                            req_line("alpha", {Point{1.5}}),
                                            R"({"type":"shutdown"})"});
  ASSERT_EQ(run.reason, ExitReason::kShutdown);
  const std::vector<std::string> errors = error_messages(run);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("injected fault at site serve.read"), std::string::npos);
  EXPECT_EQ(outcomes_of(run, "alpha").size(), 1u) << "the faulted line was still processed";
}

TEST_F(ServeServiceTest, DisabledInjectorIsBitIdenticalToNoInjector) {
  // The acceptance bar for the hooks: an armed-but-empty injector must not
  // perturb a single output byte relative to running with no injector.
  const auto batches = make_batches(21, 10, 2);
  std::vector<std::string> lines;
  lines.push_back(open_line("alpha", "MtC", 2, 1, 9));
  for (const auto& batch : batches) lines.push_back(req_line("alpha", batch));
  lines.push_back(R"({"type":"shutdown"})");

  Service plain(ServiceOptions{});
  const RunOutput without = run_lines(plain, lines);
  fault::Injector injector(5);  // seeded, but holds no rules
  ServiceOptions options;
  options.faults = &injector;
  Service hooked(options);
  const RunOutput with = run_lines(hooked, lines);
  EXPECT_EQ(outcomes_of(without, "alpha"), outcomes_of(with, "alpha"));
  EXPECT_EQ(injector.total_fired(), 0u);
}

}  // namespace
}  // namespace mobsrv
