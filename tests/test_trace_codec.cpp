// Unit tests for trace/codec: JSONL <-> binary round-trip equality, codec
// sniffing, and loud rejection of corrupt or truncated files.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "stats/rng.hpp"
#include "trace/codec.hpp"

namespace mobsrv::trace {
namespace {

namespace fs = std::filesystem;

class TraceCodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_codec_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// A 2-D trace exercising every optional section: irregular batches, a
/// moving client, an adversary solution, and two recorded runs (one with
/// per-step costs, one without).
TraceFile make_full_trace() {
  stats::Rng rng(42);
  sim::ModelParams params;
  params.move_cost_weight = 4.0;
  params.max_step = 1.0;
  params.order = sim::ServiceOrder::kServeThenMove;
  std::vector<sim::RequestBatch> steps(5);
  for (std::size_t t = 0; t < steps.size(); ++t)
    for (std::size_t i = 0; i < t; ++i)  // batch sizes 0..4, awkward doubles
      steps[t].requests.push_back(sim::Point{rng.uniform(-3.0, 3.0), 1.0 / 3.0 * double(i + 1)});

  TraceFile file(TraceMeta{"unit-test", "test", 0xfeedfacecafebeefULL},
                 sim::Instance(sim::Point{0.1, -0.25}, params, steps));

  sim::MovingClientInstance mc;
  mc.start = sim::Point{0.1, -0.25};
  mc.server_speed = 1.0;
  mc.agent_speed = 0.75;
  mc.move_cost_weight = 4.0;
  sim::AgentPath path;
  sim::Point pos = mc.start;
  for (std::size_t t = 0; t < steps.size(); ++t) {
    pos = pos + sim::Point{0.5, 0.1};
    path.positions.push_back(pos);
  }
  mc.agents.push_back(path);
  file.moving_client = mc;

  AdversaryInfo adv;
  adv.cost = 17.125;
  for (std::size_t t = 0; t <= steps.size(); ++t)
    adv.positions.push_back(sim::Point{0.3 * double(t), 0.0});
  file.adversary = adv;

  RecordedRun run1;
  run1.algorithm = "MtC";
  run1.algo_seed = 7;
  run1.speed_factor = 1.5;
  run1.policy = sim::SpeedLimitPolicy::kClamp;
  run1.total_cost = 12.34;
  run1.move_cost = 4.0;
  run1.service_cost = 8.34;
  for (std::size_t t = 0; t <= steps.size(); ++t)
    run1.positions.push_back(sim::Point{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
  for (std::size_t t = 0; t < steps.size(); ++t)
    run1.step_costs.push_back(sim::StepCost{rng.uniform(0.0, 1.0), rng.uniform(0.0, 2.0)});
  file.runs.push_back(run1);

  RecordedRun run2;
  run2.algorithm = "Lazy";
  run2.total_cost = run2.service_cost = 99.5;
  for (std::size_t t = 0; t <= steps.size(); ++t) run2.positions.push_back(sim::Point{0.1, -0.25});
  file.runs.push_back(run2);
  return file;
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(TraceCodecTest, JsonlRoundTripIsIdentical) {
  const TraceFile original = make_full_trace();
  const fs::path path = dir_ / "t.jsonl";
  write_trace(path, original);
  EXPECT_TRUE(identical(original, read_trace(path)));
}

TEST_F(TraceCodecTest, BinaryRoundTripIsIdentical) {
  const TraceFile original = make_full_trace();
  const fs::path path = dir_ / "t.mtb";
  write_trace(path, original);
  EXPECT_TRUE(identical(original, read_trace(path)));
}

TEST_F(TraceCodecTest, CodecsAreInterchangeable) {
  const TraceFile original = make_full_trace();
  const fs::path jsonl = dir_ / "t.jsonl";
  const fs::path binary = dir_ / "t.mtb";
  write_trace(jsonl, original);
  // jsonl -> memory -> binary -> memory must stay identical.
  const TraceFile from_jsonl = read_trace(jsonl);
  write_trace(binary, from_jsonl);
  const TraceFile from_binary = read_trace(binary);
  EXPECT_TRUE(identical(original, from_binary));
  // The binary form is the compact one.
  EXPECT_LT(fs::file_size(binary), fs::file_size(jsonl));
}

TEST_F(TraceCodecTest, CodecForPath) {
  EXPECT_EQ(codec_for_path("a/b.jsonl"), Codec::kJsonl);
  EXPECT_EQ(codec_for_path("a/b.mtb"), Codec::kBinary);
  EXPECT_THROW((void)codec_for_path("a/b.txt"), TraceError);
}

TEST_F(TraceCodecTest, MissingFileIsALoudError) {
  try {
    (void)read_trace(dir_ / "nope.jsonl");
    FAIL() << "expected TraceError";
  } catch (const TraceError& error) {
    EXPECT_NE(std::string(error.what()).find("nope.jsonl"), std::string::npos);
  }
}

TEST_F(TraceCodecTest, TruncatedJsonlIsRejectedWithStepCount) {
  const std::string bytes = encode_trace(make_full_trace(), Codec::kJsonl);
  // Cut in the middle of the batch lines.
  const std::size_t first_nl = bytes.find('\n');
  const std::size_t second_nl = bytes.find('\n', first_nl + 1);
  try {
    (void)decode_trace(bytes.substr(0, second_nl + 1), "cut.jsonl");
    FAIL() << "expected TraceError";
  } catch (const TraceError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("cut.jsonl"), std::string::npos);
    EXPECT_NE(what.find("truncated"), std::string::npos);
  }
}

TEST_F(TraceCodecTest, MissingEndMarkerIsRejected) {
  std::string bytes = encode_trace(make_full_trace(), Codec::kJsonl);
  // Drop the final end-marker line.
  const std::size_t cut = bytes.rfind('\n', bytes.size() - 2);
  try {
    (void)decode_trace(bytes.substr(0, cut + 1), "noend.jsonl");
    FAIL() << "expected TraceError";
  } catch (const TraceError& error) {
    EXPECT_NE(std::string(error.what()).find("end marker"), std::string::npos);
  }
}

TEST_F(TraceCodecTest, CorruptJsonLineIsRejectedWithLineInfo) {
  std::string bytes = encode_trace(make_full_trace(), Codec::kJsonl);
  bytes[bytes.find('\n') + 1] = '%';  // mangle the first batch line
  try {
    (void)decode_trace(bytes, "bad.jsonl");
    FAIL() << "expected TraceError";
  } catch (const TraceError& error) {
    EXPECT_NE(std::string(error.what()).find("corrupt"), std::string::npos);
  }
}

TEST_F(TraceCodecTest, TruncatedBinaryIsRejected) {
  const std::string bytes = encode_trace(make_full_trace(), Codec::kBinary);
  for (const std::size_t keep : {bytes.size() / 4, bytes.size() / 2, bytes.size() - 3}) {
    try {
      (void)decode_trace(bytes.substr(0, keep), "cut.mtb");
      FAIL() << "expected TraceError for prefix of " << keep << " bytes";
    } catch (const TraceError& error) {
      EXPECT_NE(std::string(error.what()).find("cut.mtb"), std::string::npos);
    }
  }
}

TEST_F(TraceCodecTest, BadMagicIsRejected) {
  std::string bytes = encode_trace(make_full_trace(), Codec::kBinary);
  bytes[0] = 'X';
  EXPECT_THROW((void)decode_trace(bytes, "junk.mtb"), TraceError);
  const fs::path path = dir_ / "junk.mtb";
  write_bytes(path, "XYZW not a trace at all");
  EXPECT_THROW((void)read_trace(path), TraceError);
}

TEST_F(TraceCodecTest, VersionMismatchIsExplicit) {
  std::string bytes = encode_trace(make_full_trace(), Codec::kBinary);
  bytes[8] = 99;  // version field follows the 8-byte magic
  try {
    (void)decode_trace(bytes, "v99.mtb");
    FAIL() << "expected TraceError";
  } catch (const TraceError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
}

TEST_F(TraceCodecTest, InvalidModelParamsAreRejected) {
  // D < 1 violates the model; the decoder must reject it as corrupt data
  // rather than crash with a bare contract violation.
  std::string bytes = encode_trace(make_full_trace(), Codec::kJsonl);
  const std::size_t d_pos = bytes.find("\"D\":4");
  ASSERT_NE(d_pos, std::string::npos);
  bytes.replace(d_pos, 5, "\"D\":0");
  EXPECT_THROW((void)decode_trace(bytes, "badD.jsonl"), TraceError);
}

TEST_F(TraceCodecTest, EmptyFileIsRejected) {
  EXPECT_THROW((void)decode_trace("", "empty"), TraceError);
}

TEST_F(TraceCodecTest, MinimalInstanceWithoutOptionalSections) {
  sim::ModelParams params;
  std::vector<sim::RequestBatch> steps(3);
  steps[1].requests.push_back(sim::Point{2.0});
  TraceFile file(TraceMeta{"mini", "test", 1}, sim::Instance(sim::Point{0.0}, params, steps));
  for (const Codec codec : {Codec::kJsonl, Codec::kBinary}) {
    const TraceFile back = decode_trace(encode_trace(file, codec), "mini");
    EXPECT_TRUE(identical(file, back)) << to_string(codec);
    EXPECT_FALSE(back.moving_client.has_value());
    EXPECT_FALSE(back.adversary.has_value());
    EXPECT_TRUE(back.runs.empty());
  }
}

}  // namespace
}  // namespace mobsrv::trace
