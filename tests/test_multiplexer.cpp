// Tests for core::SessionMultiplexer: determinism for any thread count at
// >= 1000 concurrent sessions, accounting parity with individual engine
// runs, step/drain/snapshot semantics, and error propagation.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/workloads.hpp"
#include "algorithms/registry.hpp"
#include "core/session_multiplexer.hpp"
#include "stats/rng.hpp"

namespace mobsrv {
namespace {

using core::SessionMultiplexer;
using core::SessionSpec;
using core::SessionStats;

std::shared_ptr<const sim::Instance> sample_workload(std::uint64_t seed, std::size_t horizon) {
  adv::DriftingHotspotParams params;
  params.horizon = horizon;
  params.dim = 2;
  stats::Rng rng(seed);
  return std::make_shared<const sim::Instance>(adv::make_drifting_hotspot(params, rng));
}

/// Builds the same 1000-session mix every time: a handful of shared
/// workloads, heterogeneous horizons, all registered algorithms round-robin.
void populate(SessionMultiplexer& mux, std::size_t sessions) {
  const std::vector<std::string> names = alg::algorithm_names();
  std::vector<std::shared_ptr<const sim::Instance>> workloads;
  for (std::uint64_t w = 0; w < 5; ++w)
    workloads.push_back(sample_workload(w, 16 + 7 * w));  // horizons 16..44
  for (std::size_t s = 0; s < sessions; ++s) {
    SessionSpec spec;
    spec.workload = workloads[s % workloads.size()];
    spec.algorithm = names[s % names.size()];
    spec.algo_seed = s;
    spec.speed_factor = 1.5;
    spec.tenant = "tenant-" + std::to_string(s);
    mux.add(std::move(spec));
  }
}

TEST(SessionMultiplexer, ThousandSessionsDeterministicForAnyThreadCount) {
  constexpr std::size_t kSessions = 1000;
  std::vector<std::vector<SessionStats>> snapshots;
  for (const unsigned threads : {1u, 3u, 8u}) {
    par::ThreadPool pool(threads);
    SessionMultiplexer mux(pool, /*grain=*/7);
    populate(mux, kSessions);
    EXPECT_EQ(mux.size(), kSessions);
    mux.drain();
    EXPECT_EQ(mux.live(), 0u);
    snapshots.push_back(mux.snapshot());
  }
  ASSERT_EQ(snapshots[0].size(), kSessions);
  for (std::size_t v = 1; v < snapshots.size(); ++v) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      // EXACT equality across thread counts — scheduling must be invisible.
      EXPECT_EQ(snapshots[v][s].total_cost, snapshots[0][s].total_cost) << s;
      EXPECT_EQ(snapshots[v][s].move_cost, snapshots[0][s].move_cost) << s;
      EXPECT_EQ(snapshots[v][s].service_cost, snapshots[0][s].service_cost) << s;
      EXPECT_EQ(snapshots[v][s].position, snapshots[0][s].position) << s;
      EXPECT_EQ(snapshots[v][s].steps, snapshots[0][s].steps) << s;
    }
  }
}

TEST(SessionMultiplexer, MatchesIndividualEngineRunsBitIdentically) {
  par::ThreadPool pool(4);
  SessionMultiplexer mux(pool);
  const auto workload = sample_workload(21, 40);
  const std::vector<std::string> names = alg::algorithm_names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    SessionSpec spec;
    spec.workload = workload;
    spec.algorithm = names[a];
    spec.algo_seed = 9000 + a;
    spec.speed_factor = 1.5;
    mux.add(std::move(spec));
  }
  mux.drain();
  for (std::size_t a = 0; a < names.size(); ++a) {
    const sim::AlgorithmPtr algo = alg::make_algorithm(names[a], 9000 + a);
    sim::RunOptions options;
    options.speed_factor = 1.5;
    const sim::RunResult reference = sim::run(*workload, *algo, options);
    const SessionStats stats = mux.stats(a);
    EXPECT_EQ(stats.total_cost, reference.total_cost) << names[a];
    EXPECT_EQ(stats.move_cost, reference.move_cost) << names[a];
    EXPECT_EQ(stats.service_cost, reference.service_cost) << names[a];
    EXPECT_EQ(stats.position, reference.final_position) << names[a];
  }
}

TEST(SessionMultiplexer, StepAdvancesHeterogeneousHorizonsToCompletion) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  const auto short_workload = sample_workload(1, 10);
  const auto long_workload = sample_workload(2, 35);
  for (const auto& workload : {short_workload, long_workload}) {
    SessionSpec spec;
    spec.workload = workload;
    spec.algorithm = "MtC";
    spec.speed_factor = 1.5;
    mux.add(std::move(spec));
  }
  EXPECT_EQ(mux.live(), 2u);

  EXPECT_EQ(mux.step(10), 1u);  // short session finished exactly at its horizon
  EXPECT_EQ(mux.stats(0).steps, 10u);
  EXPECT_TRUE(mux.stats(0).done);
  EXPECT_EQ(mux.stats(1).steps, 10u);
  EXPECT_FALSE(mux.stats(1).done);

  EXPECT_EQ(mux.step(100), 0u);  // capped at the remaining workload
  EXPECT_EQ(mux.stats(1).steps, 35u);

  const core::MuxTotals totals = mux.totals();
  EXPECT_EQ(totals.sessions, 2u);
  EXPECT_EQ(totals.live, 0u);
  EXPECT_EQ(totals.steps, 45u);
  EXPECT_DOUBLE_EQ(totals.total_cost, mux.stats(0).total_cost + mux.stats(1).total_cost);
}

TEST(SessionMultiplexer, SnapshotCarriesTenantAndProgress) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  SessionSpec spec;
  spec.workload = sample_workload(3, 12);
  spec.algorithm = "Lazy";
  spec.tenant = "edge-eu-1";
  mux.add(std::move(spec));
  mux.step(5);
  const std::vector<SessionStats> snapshot = mux.snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].tenant, "edge-eu-1");
  EXPECT_EQ(snapshot[0].algorithm, "Lazy");
  EXPECT_EQ(snapshot[0].steps, 5u);
  EXPECT_EQ(snapshot[0].horizon, 12u);
  EXPECT_FALSE(snapshot[0].done);
}

TEST(SessionMultiplexer, CloseCachesFinalAccountingAndReleasesTheSlot) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  populate(mux, 6);
  mux.step(5);
  const SessionStats before = mux.stats(2);
  mux.close(2);
  EXPECT_TRUE(mux.closed(2));
  mux.close(2);  // idempotent
  const SessionStats cached = mux.stats(2);
  EXPECT_TRUE(cached.closed);
  EXPECT_EQ(cached.steps, before.steps);
  EXPECT_EQ(cached.total_cost, before.total_cost);
  EXPECT_EQ(cached.positions, before.positions);

  mux.drain();  // a closed slot never advances again
  EXPECT_EQ(mux.stats(2).steps, before.steps);
  EXPECT_EQ(mux.live(), 0u);

  // Totals keep the closed slot's accounting on the books.
  const core::MuxTotals totals = mux.totals();
  EXPECT_EQ(totals.sessions, 6u);
  EXPECT_EQ(totals.closed, 1u);
  double sum = 0.0;
  for (std::size_t s = 0; s < mux.size(); ++s) sum += mux.stats(s).total_cost;
  EXPECT_DOUBLE_EQ(totals.total_cost, sum);

  // checkpoint() covers open slots only.
  EXPECT_EQ(mux.checkpoint().size(), 5u);
}

TEST(SessionMultiplexer, StepCapturingMatchesStepWhenNothingThrows) {
  par::ThreadPool pool(3);
  SessionMultiplexer plain(pool);
  SessionMultiplexer capturing(pool);
  populate(plain, 50);
  populate(capturing, 50);
  std::vector<SessionMultiplexer::SlotError> errors;
  while (plain.live() > 0) {
    const std::size_t a = plain.step(2);
    const std::size_t b = capturing.step_capturing(2, errors);
    EXPECT_EQ(a, b);
  }
  EXPECT_TRUE(errors.empty());
  for (std::size_t s = 0; s < plain.size(); ++s) {
    EXPECT_EQ(capturing.stats(s).total_cost, plain.stats(s).total_cost) << s;
    EXPECT_EQ(capturing.stats(s).steps, plain.stats(s).steps) << s;
  }
}

TEST(SessionMultiplexer, GrowingWorkloadWakesFinishedSessions) {
  // The streaming-ingestion contract: serve/ appends batches to a tenant's
  // Instance in place, and the next step() re-evaluates done-ness.
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  auto workload = std::make_shared<sim::Instance>(geo::Point{0.0, 0.0}, sim::ModelParams{},
                                                  sim::RequestStore(2));
  SessionSpec spec;
  spec.workload = workload;
  spec.algorithm = "MtC";
  spec.speed_factor = 1.5;
  mux.add(std::move(spec));
  EXPECT_EQ(mux.live(), 0u);  // empty workload: nothing to do yet

  sim::RequestBatch batch;
  batch.requests = {geo::Point{1.0, 2.0}, geo::Point{-0.5, 0.25}};
  workload->push_step(batch);
  EXPECT_EQ(mux.step(10), 0u);
  EXPECT_EQ(mux.stats(0).steps, 1u);
  EXPECT_TRUE(mux.stats(0).done);
  EXPECT_GT(mux.stats(0).total_cost, 0.0);

  // ...and again after finishing: the session keeps waking up.
  workload->push_step(batch);
  workload->push_step(sim::BatchView{});  // idle step
  mux.drain();
  EXPECT_EQ(mux.stats(0).steps, 3u);
}

TEST(SessionMultiplexer, UnknownAlgorithmThrowsOnAdd) {
  par::ThreadPool pool(1);
  SessionMultiplexer mux(pool);
  SessionSpec spec;
  spec.workload = sample_workload(4, 8);
  spec.algorithm = "NoSuchAlgorithm";
  EXPECT_THROW(mux.add(std::move(spec)), ContractViolation);
  EXPECT_EQ(mux.size(), 0u);
}

TEST(SessionMultiplexer, InvalidSpecRejectedOnAdd) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  SessionSpec bad;
  bad.workload = sample_workload(5, 8);
  bad.algorithm = "MtC";
  bad.speed_factor = 0.5;  // < 1 violates the run-options contract
  EXPECT_THROW(mux.add(std::move(bad)), ContractViolation);

  SessionSpec null_workload;
  null_workload.algorithm = "MtC";
  EXPECT_THROW(mux.add(std::move(null_workload)), ContractViolation);
  EXPECT_EQ(mux.size(), 0u);
}

TEST(SessionMultiplexer, StepsPerSessionSurvivesTenantChurn) {
  // The closed-slot carry: totals().steps_per_session must keep counting
  // every session this mux ever ran, not just whoever is open right now.
  par::ThreadPool pool(4);
  SessionMultiplexer mux(pool);
  populate(mux, 20);  // horizons 16..44
  mux.drain();
  const core::MuxTotals before = mux.totals();
  EXPECT_EQ(before.steps_per_session.count, 20u);
  EXPECT_EQ(before.steps_per_session.sum, before.steps);

  // Close half the sessions — their step counts must stay in the merge.
  for (std::size_t id = 0; id < 10; ++id) mux.close(id);
  const core::MuxTotals after = mux.totals();
  EXPECT_EQ(after.steps_per_session.count, 20u);
  EXPECT_EQ(after.steps_per_session.sum, after.steps);
  EXPECT_EQ(after.steps_per_session.p50, before.steps_per_session.p50);
  EXPECT_EQ(after.steps_per_session.max, before.steps_per_session.max);

  // Close everything: the distribution is now entirely the closed carry.
  for (std::size_t id = 10; id < 20; ++id) mux.close(id);
  const core::MuxTotals closed = mux.totals();
  EXPECT_EQ(closed.closed, 20u);
  EXPECT_EQ(closed.steps_per_session.count, 20u);
  EXPECT_EQ(closed.steps_per_session.sum, closed.steps);
}

TEST(SessionMultiplexer, QueueDepthTracksPendingSteps) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  const auto workload = sample_workload(3, 12);
  for (int s = 0; s < 3; ++s) {
    SessionSpec spec;
    spec.workload = workload;
    spec.algorithm = "MtC";
    spec.algo_seed = static_cast<std::uint64_t>(s);
    spec.speed_factor = 1.5;
    mux.add(std::move(spec));
  }
  EXPECT_EQ(mux.totals().queue_depth, 3u * 12u);
  mux.step(5);
  EXPECT_EQ(mux.totals().queue_depth, 3u * 7u);
  mux.close(0);  // a closed slot contributes no pending work
  EXPECT_EQ(mux.totals().queue_depth, 2u * 7u);
  mux.drain();
  EXPECT_EQ(mux.totals().queue_depth, 0u);
}

TEST(SessionMultiplexer, RoundTimingIsObservationalAndSwitchable) {
  par::ThreadPool pool(2);
  SessionMultiplexer timed(pool);
  SessionMultiplexer lean(pool);
  lean.set_timing_enabled(false);
  EXPECT_TRUE(timed.timing_enabled());
  EXPECT_FALSE(lean.timing_enabled());
  populate(timed, 8);
  populate(lean, 8);

  std::size_t rounds = 0;
  while (timed.step(1) > 0) ++rounds;
  while (lean.step(1) > 0) {
  }
  // One histogram entry per round; none on the lean path. The loop's final
  // call (returning 0) still ran — and timed — a round.
  EXPECT_EQ(timed.totals().step_latency.count, rounds + 1);
  EXPECT_EQ(lean.totals().step_latency.count, 0u);

  // Timing is observational only: results are bit-identical either way.
  const std::vector<SessionStats> a = timed.snapshot();
  const std::vector<SessionStats> b = lean.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].total_cost, b[s].total_cost) << s;
    EXPECT_EQ(a[s].position, b[s].position) << s;
  }
}

// ---------------------------------------------------------------------------
// Active-set scheduling: parked/ready split, growth wakeups, poke().
// ---------------------------------------------------------------------------

TEST(SessionMultiplexer, ActiveTracksTheReadySetAcrossRounds) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  populate(mux, 6);
  EXPECT_EQ(mux.active(), 6u);  // armed on add: every workload has steps
  mux.step(5);
  EXPECT_EQ(mux.active(), 6u);  // still pending after 5 of 16+ steps
  mux.drain();
  EXPECT_EQ(mux.active(), 0u);  // everyone parked at their horizon
  EXPECT_EQ(mux.totals().active, 0u);
}

TEST(SessionMultiplexer, IdleGrowthWakesParkedSessionsAtAnyThreadCount) {
  // The streaming contract under the active-set scheduler: a parked
  // session whose Instance gained steps between rounds is re-armed by the
  // very next step()/step_capturing()/drain() (the empty-ready rescan) —
  // no poke() required when the mux had nothing else to run.
  for (const unsigned threads : {1u, 3u, 8u}) {
    par::ThreadPool pool(threads);
    SessionMultiplexer mux(pool, /*grain=*/3);
    std::vector<std::shared_ptr<sim::Instance>> workloads;
    for (int s = 0; s < 9; ++s) {
      auto workload = std::make_shared<sim::Instance>(geo::Point{0.0, 0.0}, sim::ModelParams{},
                                                      sim::RequestStore(2));
      SessionSpec spec;
      spec.workload = workload;
      spec.algorithm = "MtC";
      spec.speed_factor = 1.5;
      spec.algo_seed = static_cast<std::uint64_t>(s);
      mux.add(std::move(spec));
      workloads.push_back(std::move(workload));
    }
    EXPECT_EQ(mux.active(), 0u);  // all parked: empty workloads

    sim::RequestBatch batch;
    batch.requests = {geo::Point{1.0, 2.0}, geo::Point{-0.5, 0.25}};

    // step(): every grown session advances in the next round.
    for (auto& workload : workloads) workload->push_step(batch);
    mux.step(10);
    for (std::size_t s = 0; s < workloads.size(); ++s)
      EXPECT_EQ(mux.stats(s).steps, 1u) << "threads=" << threads << " slot=" << s;

    // step_capturing(): same wakeup on the error-capturing path.
    for (auto& workload : workloads) workload->push_step(batch);
    std::vector<SessionMultiplexer::SlotError> errors;
    mux.step_capturing(10, errors);
    EXPECT_TRUE(errors.empty());
    for (std::size_t s = 0; s < workloads.size(); ++s)
      EXPECT_EQ(mux.stats(s).steps, 2u) << "threads=" << threads << " slot=" << s;

    // drain(): always rescans, so growth is consumed to the new horizon.
    for (auto& workload : workloads) {
      workload->push_step(batch);
      workload->push_step(sim::BatchView{});
    }
    mux.drain();
    for (std::size_t s = 0; s < workloads.size(); ++s)
      EXPECT_EQ(mux.stats(s).steps, 4u) << "threads=" << threads << " slot=" << s;
    EXPECT_EQ(mux.active(), 0u);
  }
}

TEST(SessionMultiplexer, PokeRearmsAParkedSessionWhileOthersRun) {
  // With other sessions still ready, step() never rescans the whole table
  // (that would be O(sessions) again) — a busy mux learns about growth
  // from poke(), the serve layer's job after push_step.
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  auto grower = std::make_shared<sim::Instance>(geo::Point{0.0, 0.0}, sim::ModelParams{},
                                                sim::RequestStore(2));
  SessionSpec spec;
  spec.workload = grower;
  spec.algorithm = "MtC";
  spec.speed_factor = 1.5;
  mux.add(std::move(spec));
  SessionSpec busy;
  busy.workload = sample_workload(11, 30);
  busy.algorithm = "MtC";
  busy.speed_factor = 1.5;
  mux.add(std::move(busy));
  EXPECT_EQ(mux.active(), 1u);  // only the busy session is armed

  sim::RequestBatch batch;
  batch.requests = {geo::Point{1.0, 2.0}};
  grower->push_step(batch);
  mux.step(1);
  EXPECT_EQ(mux.stats(0).steps, 0u);  // parked: ready list was not empty
  mux.poke(0);
  EXPECT_EQ(mux.active(), 2u);
  mux.step(1);
  EXPECT_EQ(mux.stats(0).steps, 1u);
  // poke() on an armed, a done, and a closed slot is a safe no-op.
  mux.poke(0);
  mux.poke(0);
  mux.close(0);
  mux.poke(0);
  EXPECT_EQ(mux.active(), 1u);
}

// ---------------------------------------------------------------------------
// Per-tenant rate limits: token bucket, throttled counters, invariance.
// ---------------------------------------------------------------------------

TEST(SessionMultiplexer, RateLimitCapsStepsPerRoundAndCountsThrottles) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  SessionSpec spec;
  spec.workload = sample_workload(7, 6);
  spec.algorithm = "MtC";
  spec.speed_factor = 1.5;
  spec.rate.steps_per_round = 1.0;  // burst derives to 1
  mux.add(std::move(spec));

  std::size_t rounds = 0;
  while (mux.live() > 0) {
    mux.step(10);  // asks for up to 10; the bucket allows 1
    ++rounds;
    ASSERT_LE(rounds, 16u);
  }
  EXPECT_EQ(rounds, 6u);
  const SessionStats stats = mux.stats(0);
  EXPECT_EQ(stats.steps, 6u);
  // Rounds 1..5 wanted >1 step and got 1; the last round wanted exactly 1.
  EXPECT_EQ(stats.throttled_rounds, 5u);
  EXPECT_EQ(mux.totals().throttled, 5u);

  // drain() ignores rate limits (shutdown must finish) and never counts
  // phantom throttles.
  SessionMultiplexer draining(pool);
  SessionSpec limited;
  limited.workload = sample_workload(7, 6);
  limited.algorithm = "MtC";
  limited.speed_factor = 1.5;
  limited.rate.steps_per_round = 0.25;
  draining.add(std::move(limited));
  draining.drain();
  EXPECT_EQ(draining.stats(0).steps, 6u);
  EXPECT_EQ(draining.stats(0).throttled_rounds, 0u);
}

TEST(SessionMultiplexer, FractionalRateStepsEveryOtherRound) {
  par::ThreadPool pool(1);
  SessionMultiplexer mux(pool);
  SessionSpec spec;
  spec.workload = sample_workload(8, 4);
  spec.algorithm = "MtC";
  spec.speed_factor = 1.5;
  spec.rate.steps_per_round = 0.5;
  spec.rate.burst = 1.0;
  mux.add(std::move(spec));
  std::vector<std::size_t> cursor;
  for (int round = 0; round < 7 && mux.live() > 0; ++round) {
    mux.step(1);
    cursor.push_back(mux.stats(0).steps);
  }
  // Burst of 1 on arming, then a step every other round.
  EXPECT_EQ(cursor, (std::vector<std::size_t>{1, 1, 2, 2, 3, 3, 4}));
  EXPECT_EQ(mux.stats(0).steps, 4u);
}

TEST(SessionMultiplexer, RateLimitsNeverChangeResults) {
  // Scheduling-only: a throttled session takes more rounds but lands on
  // bit-identical accounting. Token state is deliberately not part of the
  // checkpoint for the same reason.
  par::ThreadPool pool(4);
  SessionMultiplexer plain(pool);
  SessionMultiplexer limited(pool);
  const auto workload = sample_workload(13, 25);
  const std::vector<std::string> names = alg::algorithm_names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    SessionSpec spec;
    spec.workload = workload;
    spec.algorithm = names[a];
    spec.algo_seed = 100 + a;
    spec.speed_factor = 1.5;
    plain.add(std::move(spec));
    SessionSpec throttled;
    throttled.workload = workload;
    throttled.algorithm = names[a];
    throttled.algo_seed = 100 + a;
    throttled.speed_factor = 1.5;
    throttled.rate.steps_per_round = 0.5 + static_cast<double>(a % 3);
    limited.add(std::move(throttled));
  }
  while (plain.step(3) > 0) {
  }
  while (limited.step(3) > 0) {
  }
  for (std::size_t s = 0; s < plain.size(); ++s) {
    EXPECT_EQ(limited.stats(s).total_cost, plain.stats(s).total_cost) << s;
    EXPECT_EQ(limited.stats(s).position, plain.stats(s).position) << s;
    EXPECT_EQ(limited.stats(s).steps, plain.stats(s).steps) << s;
  }
  EXPECT_GT(limited.totals().throttled, 0u);
  EXPECT_EQ(plain.totals().throttled, 0u);
}

TEST(SessionMultiplexer, InvalidRateLimitsRejectedOnAdd) {
  par::ThreadPool pool(1);
  SessionMultiplexer mux(pool);
  SessionSpec negative;
  negative.workload = sample_workload(5, 8);
  negative.algorithm = "MtC";
  negative.rate.steps_per_round = -1.0;
  EXPECT_THROW(mux.add(std::move(negative)), ContractViolation);

  SessionSpec sub_one_burst;
  sub_one_burst.workload = sample_workload(5, 8);
  sub_one_burst.algorithm = "MtC";
  sub_one_burst.rate.steps_per_round = 2.0;
  sub_one_burst.rate.burst = 0.5;  // a bucket that can never hold one step
  EXPECT_THROW(mux.add(std::move(sub_one_burst)), ContractViolation);

  SessionSpec burst_without_rate;
  burst_without_rate.workload = sample_workload(5, 8);
  burst_without_rate.algorithm = "MtC";
  burst_without_rate.rate.burst = 4.0;
  EXPECT_THROW(mux.add(std::move(burst_without_rate)), ContractViolation);
  EXPECT_EQ(mux.size(), 0u);
}

TEST(SessionMultiplexer, PriorityOrdersDispatchWithoutChangingResults) {
  std::vector<std::vector<SessionStats>> snapshots;
  for (const unsigned threads : {1u, 3u, 8u}) {
    par::ThreadPool pool(threads);
    SessionMultiplexer mux(pool, /*grain=*/5);
    populate(mux, 200);
    // Adversarial priorities: reverse of slot order, reassigned mid-run.
    for (std::size_t s = 0; s < mux.size(); ++s)
      mux.set_priority(s, static_cast<double>(mux.size() - s));
    mux.step(4);
    for (std::size_t s = 0; s < mux.size(); ++s)
      mux.set_priority(s, static_cast<double>(s % 7));
    mux.drain();
    snapshots.push_back(mux.snapshot());
  }
  par::ThreadPool pool(4);
  SessionMultiplexer unprioritised(pool);
  populate(unprioritised, 200);
  unprioritised.drain();
  snapshots.push_back(unprioritised.snapshot());
  for (std::size_t v = 1; v < snapshots.size(); ++v)
    for (std::size_t s = 0; s < snapshots[0].size(); ++s) {
      EXPECT_EQ(snapshots[v][s].total_cost, snapshots[0][s].total_cost) << s;
      EXPECT_EQ(snapshots[v][s].position, snapshots[0][s].position) << s;
    }
}

// ---------------------------------------------------------------------------
// Dirty-slot tracking: the incremental-checkpoint building block.
// ---------------------------------------------------------------------------

TEST(SessionMultiplexer, DirtySlotsTrackStepsSinceMarkSaved) {
  par::ThreadPool pool(2);
  SessionMultiplexer mux(pool);
  populate(mux, 4);
  // Never-saved slots are dirty even at cursor 0 (a fresh mux must write
  // everything into its first save).
  EXPECT_EQ(mux.dirty_slots().size(), 4u);
  mux.mark_saved();
  EXPECT_TRUE(mux.dirty_slots().empty());

  mux.step(3);
  EXPECT_EQ(mux.dirty_slots().size(), 4u);
  mux.mark_saved();
  EXPECT_TRUE(mux.dirty_slots().empty());

  // Per-slot records match the bulk checkpoint for the same slot.
  const auto records = mux.checkpoint();
  for (std::size_t s = 0; s < mux.size(); ++s) {
    const core::SessionCheckpointRecord record = mux.checkpoint_slot(s);
    EXPECT_EQ(record.cursor, records[s].cursor) << s;
    EXPECT_EQ(record.tenant, records[s].tenant) << s;
  }

  // A closed slot can never be dirty.
  mux.close(0);
  mux.step(2);
  const std::vector<std::size_t> dirty = mux.dirty_slots();
  EXPECT_EQ(dirty.size(), 3u);
  for (const std::size_t id : dirty) EXPECT_NE(id, 0u);
}

}  // namespace
}  // namespace mobsrv
