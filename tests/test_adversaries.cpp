// Unit tests for adversary/lower_bounds.hpp and moving_client_lb.hpp: the
// Theorem 1/2/3/8 constructions. Checks structural faithfulness to the
// proofs (phase layout, request placement) and the adversary's own cost
// against the paper's closed-form bounds.
#include "adversary/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "adversary/moving_client_lb.hpp"
#include "sim/cost.hpp"

namespace mobsrv::adv {
namespace {

using geo::Point;

TEST(Theorem1, StructureMatchesProof) {
  Theorem1Params p;
  p.horizon = 100;  // x = 10
  stats::Rng rng(1);
  const AdversarialInstance a = make_theorem1(p, rng);
  EXPECT_EQ(a.instance.horizon(), 100u);
  ASSERT_EQ(a.adversary_positions.size(), 101u);
  // Phase 1: requests pinned to the start.
  for (std::size_t t = 0; t < 10; ++t)
    EXPECT_EQ(a.instance.step(t)[0], a.instance.start());
  // Phase 2: requests ride on the adversary's post-move position.
  for (std::size_t t = 10; t < 100; ++t)
    EXPECT_EQ(a.instance.step(t)[0], a.adversary_positions[t + 1]);
  // Adversary walks at exactly m every round, in one fixed direction.
  for (std::size_t t = 0; t < 100; ++t)
    EXPECT_NEAR(geo::distance(a.adversary_positions[t], a.adversary_positions[t + 1]), 1.0,
                1e-12);
}

TEST(Theorem1, AdversaryCostWithinPaperBound) {
  // Proof: cost <= xDm + m·x² + (T−x)Dm  (phase-1 service sums to ≤ m·x²).
  Theorem1Params p;
  p.horizon = 400;  // x = 20
  p.move_cost_weight = 2.0;
  stats::Rng rng(2);
  const AdversarialInstance a = make_theorem1(p, rng);
  const double x = 20.0, T = 400.0, D = 2.0, m = 1.0;
  EXPECT_LE(a.adversary_cost, x * D * m + m * x * x + (T - x) * D * m + 1e-9);
  EXPECT_GT(a.adversary_cost, 0.0);
}

TEST(Theorem1, CoinFlipGivesBothDirections) {
  Theorem1Params p;
  p.horizon = 64;
  bool saw_left = false, saw_right = false;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    stats::Rng rng(seed);
    const AdversarialInstance a = make_theorem1(p, rng);
    (a.adversary_positions.back()[0] > 0 ? saw_right : saw_left) = true;
  }
  EXPECT_TRUE(saw_left);
  EXPECT_TRUE(saw_right);
}

TEST(Theorem1, CustomXAndDimension) {
  Theorem1Params p;
  p.horizon = 50;
  p.x = 5;
  p.dim = 3;
  p.requests_per_step = 4;
  stats::Rng rng(3);
  const AdversarialInstance a = make_theorem1(p, rng);
  EXPECT_EQ(a.instance.dim(), 3);
  EXPECT_EQ(a.instance.step(0).size(), 4u);
  EXPECT_EQ(a.instance.step(4)[0], a.instance.start());
  EXPECT_EQ(a.instance.step(5)[0], a.adversary_positions[6]);
}

TEST(Theorem2, PhaseLayoutAndRequestCounts) {
  Theorem2Params p;
  p.horizon = 300;
  p.delta = 0.5;
  p.r_min = 2;
  p.r_max = 8;
  p.x = 10;  // phase A 10 steps, phase B ceil(10/0.5) = 20 steps
  stats::Rng rng(4);
  const AdversarialInstance a = make_theorem2(p, rng);
  // First cycle: steps 0..9 have Rmin requests at the anchor (start).
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(a.instance.step(t).size(), 2u);
    EXPECT_EQ(a.instance.step(t)[0], a.instance.start());
  }
  // Steps 10..29: Rmax requests riding the adversary.
  for (std::size_t t = 10; t < 30; ++t) {
    EXPECT_EQ(a.instance.step(t).size(), 8u);
    EXPECT_EQ(a.instance.step(t)[0], a.adversary_positions[t + 1]);
  }
  // Second cycle anchors at the adversary's position after step 29.
  EXPECT_EQ(a.instance.step(30)[0], a.adversary_positions[30]);
}

TEST(Theorem2, DefaultXSatisfiesProofConstraints) {
  Theorem2Params p;
  p.horizon = 2000;
  p.delta = 0.25;
  p.move_cost_weight = 4.0;
  p.r_min = 1;
  stats::Rng rng(5);
  const AdversarialInstance a = make_theorem2(p, rng);
  // x >= 2/δ = 8 and x >= D(1+1/δ)/(2Rmin) = 10 → x >= 10: the first phase
  // must pin requests to the start for at least 10 steps.
  for (std::size_t t = 0; t < 10; ++t)
    EXPECT_EQ(a.instance.step(t)[0], a.instance.start());
}

TEST(Theorem2, AdversaryCostWithinPaperBound) {
  // Proof: with x large enough, total adversary cost <= 3·Rmin·m·x² per
  // cycle; check per-cycle on a single full cycle.
  Theorem2Params p;
  p.delta = 0.5;
  p.r_min = 2;
  p.r_max = 6;
  p.x = 16;
  p.horizon = 16 + 32;  // exactly one cycle
  stats::Rng rng(6);
  const AdversarialInstance a = make_theorem2(p, rng);
  const double x = 16.0, m = 1.0;
  EXPECT_LE(a.adversary_cost, 3.0 * 2.0 * m * x * x + 1e-9);
}

TEST(Theorem2, RejectsBadParameters) {
  Theorem2Params p;
  p.delta = 0.0;
  stats::Rng rng(7);
  EXPECT_THROW((void)make_theorem2(p, rng), mobsrv::ContractViolation);
  p.delta = 0.5;
  p.r_min = 4;
  p.r_max = 2;
  EXPECT_THROW((void)make_theorem2(p, rng), mobsrv::ContractViolation);
}

TEST(Theorem3, TwoStepCycleStructure) {
  Theorem3Params p;
  p.horizon = 20;
  p.requests_per_step = 5;
  stats::Rng rng(8);
  const AdversarialInstance a = make_theorem3(p, rng);
  EXPECT_EQ(a.instance.params().order, sim::ServiceOrder::kServeThenMove);
  for (std::size_t t = 0; t < 20; t += 2) {
    // Step t: requests at the adversary's pre-hop position.
    EXPECT_EQ(a.instance.step(t)[0], a.adversary_positions[t]);
    EXPECT_EQ(a.instance.step(t).size(), 5u);
    // Hop of exactly m, then a resting step.
    EXPECT_NEAR(geo::distance(a.adversary_positions[t], a.adversary_positions[t + 1]), 1.0,
                1e-12);
    EXPECT_EQ(a.adversary_positions[t + 1], a.adversary_positions[t + 2]);
    // Step t+1: requests at the post-hop position.
    EXPECT_EQ(a.instance.step(t + 1)[0], a.adversary_positions[t + 1]);
  }
}

TEST(Theorem3, AdversaryPaysExactlyDmPerCycle) {
  Theorem3Params p;
  p.horizon = 40;
  p.move_cost_weight = 3.0;
  stats::Rng rng(9);
  const AdversarialInstance a = make_theorem3(p, rng);
  // Answer-first: all services are at distance 0; movement = m per cycle.
  EXPECT_NEAR(a.adversary_cost, 20.0 * 3.0, 1e-9);
}

TEST(Theorem3, OddHorizonRoundsDown) {
  Theorem3Params p;
  p.horizon = 21;
  stats::Rng rng(10);
  const AdversarialInstance a = make_theorem3(p, rng);
  EXPECT_EQ(a.instance.horizon(), 20u);
}

TEST(Theorem8, PhaseStructure) {
  Theorem8Params p;
  p.horizon = 1024;
  p.epsilon = 1.0;  // m_a = 2·m_s
  p.x = 8;          // L = ceil(8·2/1) = 16
  stats::Rng rng(11);
  const MovingClientAdversarial a = make_theorem8(p, rng);
  a.mc.validate();
  EXPECT_EQ(a.mc.horizon(), 1024u);
  EXPECT_DOUBLE_EQ(a.mc.agent_speed, 2.0);
  const auto& agent = a.mc.agents[0].positions;
  // Agent idles at the start for the early phase-1 rounds.
  EXPECT_EQ(agent[0], a.mc.start);
  // At the end of phase 1 (t = 16, index 15) the agent has caught the
  // adversary, and from then on they travel together.
  EXPECT_NEAR(geo::distance(agent[15], a.adversary_positions[16]), 0.0, 1e-9);
  for (std::size_t t = 16; t < 1024; ++t)
    EXPECT_NEAR(geo::distance(agent[t], a.adversary_positions[t + 1]), 0.0, 1e-9);
}

TEST(Theorem8, AdversaryTrajectoryFeasibleAtServerSpeed) {
  Theorem8Params p;
  p.horizon = 256;
  p.epsilon = 0.5;
  stats::Rng rng(12);
  const MovingClientAdversarial a = make_theorem8(p, rng);
  const sim::Instance inst = sim::to_instance(a.mc);
  EXPECT_EQ(sim::first_speed_violation(inst, a.adversary_positions), -1);
  EXPECT_NEAR(sim::trajectory_cost(inst, a.adversary_positions), a.adversary_cost, 1e-9);
}

TEST(Theorem8, CostWithinPaperBound) {
  // Proof: adversary cost <= D·x·m_a + x²·m_a²/m_s + D·(T − L)·m_s.
  Theorem8Params p;
  p.horizon = 4096;
  p.epsilon = 1.0;
  p.move_cost_weight = 2.0;
  stats::Rng rng(13);
  const MovingClientAdversarial a = make_theorem8(p, rng);
  const double ms = 1.0, ma = 2.0, D = 2.0, T = 4096.0;
  const double x = std::round(std::sqrt(T * ms / ma));
  const double bound = D * x * ma + x * x * ma * ma / ms + D * T * ms;
  EXPECT_LE(a.adversary_cost, bound * 1.1);
}

TEST(AllLowerBounds, InstancesAreValidAndDeterministic) {
  stats::Rng rng_a(99), rng_b(99);
  Theorem1Params p1;
  p1.horizon = 64;
  const auto a = make_theorem1(p1, rng_a);
  const auto b = make_theorem1(p1, rng_b);
  EXPECT_EQ(a.adversary_cost, b.adversary_cost);
  for (std::size_t t = 0; t <= 64; ++t)
    EXPECT_EQ(a.adversary_positions[t], b.adversary_positions[t]);
}

}  // namespace
}  // namespace mobsrv::adv
