// Unit tests for parallel/: ThreadPool lifecycle, exception propagation,
// parallel_for chunking — and the determinism guarantee the experiment
// harness depends on (results independent of thread count).
#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "stats/rng.hpp"

namespace mobsrv::par {
namespace {

TEST(ThreadPool, ConstructsRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable and the error does not repeat.
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

TEST(ThreadPool, DestructionJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 20; ++i) pool.submit([&] { counter.fetch_add(1); });
    pool.wait_idle();
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, 1000, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, BackwardsRangeThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for(pool, 5, 4, 1, [](std::size_t) {}), ContractViolation);
}

TEST(ParallelFor, GrainZeroTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  parallel_for(pool, 0, 10, 0, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, SubRangeRespectsBounds) {
  ThreadPool pool(2);
  std::vector<int> hits(20, 0);
  std::mutex m;
  parallel_for(pool, 5, 15, 3, [&](std::size_t i) {
    std::lock_guard lock(m);
    hits[i]++;
  });
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(hits[i], (i >= 5 && i < 15) ? 1 : 0);
}

TEST(ParallelFor, ExceptionInBodyPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 100, 1,
                            [](std::size_t i) {
                              if (i == 42) throw std::logic_error("bad index");
                            }),
               std::logic_error);
}

TEST(ParallelMap, CollectsResultsInOrder) {
  ThreadPool pool(3);
  const std::vector<int> out =
      parallel_map<int>(pool, 50, 4, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

// The determinism contract: per-index seeded computation gives identical
// results for 1 and N workers regardless of scheduling.
TEST(ParallelFor, DeterministicAcrossThreadCounts) {
  auto run_with = [](unsigned threads) {
    ThreadPool pool(threads);
    return parallel_map<double>(pool, 64, 1, [](std::size_t i) {
      stats::Rng rng({stats::hash_name("det"), static_cast<std::uint64_t>(i)});
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rng.normal();
      return acc;
    });
  };
  const auto serial = run_with(1);
  const auto parallel4 = run_with(4);
  const auto parallel7 = run_with(7);
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel7);
}

TEST(ParallelFor, LargeGrainFallsBackToSerial) {
  ThreadPool pool(4);
  // total <= grain: runs inline on the calling thread.
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(8);
  parallel_for(pool, 0, 8, 100, [&](std::size_t i) { ids[i] = std::this_thread::get_id(); });
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace mobsrv::par
