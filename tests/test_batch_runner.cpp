// Unit tests for trace/batch_runner: sharded directory replay aggregates
// correctly, is deterministic across thread counts, and verifies recorded
// runs along the way.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "trace/batch_runner.hpp"
#include "trace/corpus.hpp"

namespace mobsrv::trace {
namespace {

namespace fs = std::filesystem;

class BatchRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_batch_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Writes a small mixed-codec corpus with recorded MtC runs.
  std::vector<fs::path> write_small_corpus(std::size_t count) {
    const std::vector<CorpusScenario>& scenarios = corpus_scenarios();
    std::vector<fs::path> files;
    for (std::size_t i = 0; i < count; ++i) {
      TraceFile file = make_corpus_trace(scenarios[i % scenarios.size()].name, i, 0.05);
      file.runs.push_back(record_run(file.instance, "MtC", i, 1.5));
      const Codec codec = i % 2 == 0 ? Codec::kJsonl : Codec::kBinary;
      const fs::path path =
          dir_ / ("corpus-" + std::to_string(i) + extension(codec));
      write_trace(path, file, codec);
      files.push_back(path);
    }
    return files;
  }

  fs::path dir_;
};

TEST_F(BatchRunnerTest, ListTraceFilesFindsBothCodecsSorted) {
  write_small_corpus(4);
  const std::vector<fs::path> files = list_trace_files(dir_);
  ASSERT_EQ(files.size(), 4u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  EXPECT_THROW((void)list_trace_files(dir_ / "missing"), TraceError);
  const fs::path empty = dir_ / "empty";
  fs::create_directories(empty);
  EXPECT_THROW((void)list_trace_files(empty), TraceError);
}

TEST_F(BatchRunnerTest, AggregatesMatchSingleFileReplays) {
  const std::vector<fs::path> files = write_small_corpus(6);
  BatchOptions options;
  options.algorithms = {"MtC", "Lazy"};

  par::ThreadPool pool(4);
  const BatchResult result = run_batch(pool, files, options);

  EXPECT_EQ(result.files, 6u);
  EXPECT_EQ(result.entries.size(), 12u);  // file-major × 2 algorithms
  ASSERT_EQ(result.summaries.size(), 2u);
  EXPECT_EQ(result.summaries[0].algorithm, "MtC");
  EXPECT_EQ(result.summaries[1].algorithm, "Lazy");
  EXPECT_EQ(result.summaries[0].cost.count(), 6u);
  EXPECT_EQ(result.replay_checks, 6u);       // one recorded MtC run per file
  EXPECT_EQ(result.replay_mismatches, 0u);   // bit-identical by construction

  // Cross-check every entry against a direct sequential computation.
  for (const BatchEntry& entry : result.entries) {
    const TraceFile file = read_trace(dir_ / entry.file);
    const sim::RunResult direct = run_on_trace(file, entry.algorithm, options.algo_seed, 1.5);
    EXPECT_EQ(entry.cost, direct.total_cost) << entry.file << " / " << entry.algorithm;
    EXPECT_GE(entry.ratio_vs_best, 1.0);
  }

  // Wins: exactly one strict winner per file at most, and ratio 1 for it.
  int wins = 0;
  for (const BatchAlgoSummary& s : result.summaries) wins += s.wins;
  EXPECT_LE(wins, 6);
  EXPECT_GT(wins, 0);
}

TEST_F(BatchRunnerTest, DeterministicAcrossThreadCounts) {
  const std::vector<fs::path> files = write_small_corpus(5);
  BatchOptions options;
  options.algorithms = {"MtC", "GreedyCenter"};
  par::ThreadPool one(1);
  par::ThreadPool eight(8);
  const BatchResult a = run_batch(one, files, options);
  const BatchResult b = run_batch(eight, files, options);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].file, b.entries[i].file);
    EXPECT_EQ(a.entries[i].algorithm, b.entries[i].algorithm);
    EXPECT_EQ(a.entries[i].cost, b.entries[i].cost);  // exact
  }
}

TEST_F(BatchRunnerTest, AdversaryRatiosOnlyWhereAvailable) {
  // theorem1 carries an adversary solution; uniform-noise does not.
  TraceFile with = make_corpus_trace("theorem1", 1, 0.05);
  TraceFile without = make_corpus_trace("uniform-noise", 1, 0.05);
  write_trace(dir_ / "with.jsonl", with, Codec::kJsonl);
  write_trace(dir_ / "without.jsonl", without, Codec::kJsonl);

  BatchOptions options;
  options.algorithms = {"MtC"};
  par::ThreadPool pool(2);
  const BatchResult result = run_batch(pool, list_trace_files(dir_), options);
  ASSERT_EQ(result.summaries.size(), 1u);
  EXPECT_EQ(result.summaries[0].ratio_vs_adversary.count(), 1u);
  for (const BatchEntry& entry : result.entries) {
    if (entry.scenario == "theorem1") {
      EXPECT_GT(entry.ratio_vs_adversary, 0.0);
    }
    if (entry.scenario == "uniform-noise") {
      EXPECT_EQ(entry.ratio_vs_adversary, 0.0);
    }
  }
}

TEST_F(BatchRunnerTest, TamperedRecordedRunIsCountedAsMismatch) {
  TraceFile file = make_corpus_trace("commute", 1, 0.05);
  file.runs.push_back(record_run(file.instance, "MtC", 1, 1.5));
  file.runs.front().total_cost *= 1.0000001;  // corrupt the recorded cost
  write_trace(dir_ / "tampered.jsonl", file, Codec::kJsonl);

  BatchOptions options;
  options.algorithms = {"MtC"};
  par::ThreadPool pool(2);
  const BatchResult result = run_batch(pool, {dir_ / "tampered.jsonl"}, options);
  EXPECT_EQ(result.replay_checks, 1u);
  EXPECT_EQ(result.replay_mismatches, 1u);
}

TEST_F(BatchRunnerTest, CorruptFileInBatchPropagates) {
  write_small_corpus(2);
  std::ofstream bad(dir_ / "bad.jsonl");
  bad << "{\"format\":\"nope\"}\n";
  bad.close();
  BatchOptions options;
  options.algorithms = {"MtC"};
  par::ThreadPool pool(2);
  EXPECT_THROW((void)run_batch(pool, list_trace_files(dir_), options), TraceError);
}

TEST_F(BatchRunnerTest, JsonSerialisationIsWellFormed) {
  write_small_corpus(3);
  BatchOptions options;
  options.algorithms = {"MtC", "Lazy"};
  par::ThreadPool pool(2);
  const BatchResult result = run_batch(pool, list_trace_files(dir_), options);
  const io::Json json = io::Json::parse(batch_to_json(result).dump());
  EXPECT_EQ(json.at("files").as_uint64(), 3u);
  EXPECT_EQ(json.at("algorithms").as_array().size(), 2u);
  EXPECT_EQ(json.at("entries").as_array().size(), 6u);
  EXPECT_EQ(json.at("replay_mismatches").as_uint64(), 0u);
}

}  // namespace
}  // namespace mobsrv::trace
