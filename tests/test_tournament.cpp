// Unit tests for scenario/tournament: byte-identical results at any thread
// count and chunk size, roster/--only validation, fleet-scenario roster
// restriction and skip reporting, Elo bookkeeping invariants, and the
// leaderboard serialisations.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "algorithms/registry.hpp"
#include "common/contracts.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/tournament.hpp"

namespace mobsrv::scenario {
namespace {

namespace fs = std::filesystem;

class TournamentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_tournament_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    write("alpha.json",
          R"({"v": 1, "name": "alpha", "kind": "uniform-noise", "seed": 1,
              "params": {"horizon": 48}})");
    write("bursty.json",
          R"({"v": 1, "name": "bursty", "kind": "bursts", "seed": 2,
              "params": {"horizon": 40}})");
    write("zig.json",
          R"({"v": 1, "name": "zig", "kind": "zigzag", "params": {"horizon": 32}})");
    write("squad.json",
          R"({"v": 1, "name": "squad", "kind": "uniform-noise", "seed": 3,
              "params": {"horizon": 32}, "fleet": {"size": 3, "spread": 3.0}})");
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write(const std::string& name, const std::string& text) {
    std::ofstream out(dir_ / name);
    out << text << "\n";
  }

  fs::path dir_;
};

TEST_F(TournamentTest, ByteIdenticalAtAnyThreadCountAndChunkSize) {
  TournamentOptions options;
  options.algorithms = {"MtC", "Lazy", "AssignAndChase"};
  options.seed = 7;

  std::string baseline;
  for (const unsigned threads : {1u, 4u}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{8}}) {
      par::ThreadPool pool(threads);
      TournamentOptions opts = options;
      opts.chunk = chunk;
      const std::string report = tournament_to_json(run_tournament(dir_, pool, opts)).dump();
      if (baseline.empty())
        baseline = report;
      else
        EXPECT_EQ(report, baseline) << threads << " threads, chunk " << chunk;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST_F(TournamentTest, DefaultRosterIsEveryFleetAlgorithm) {
  par::ThreadPool pool(2);
  const TournamentResult result = run_tournament(dir_, pool, {});
  EXPECT_EQ(result.algorithms, alg::fleet_algorithm_names());
  EXPECT_TRUE(result.skipped.empty());

  // The fleet scenario is played only by fleet-native strategies; the
  // single-server adapters sit it out.
  const std::vector<std::string> fleet_native = alg::fleet_native_names();
  std::size_t squad_cells = 0;
  for (const TournamentCell& cell : result.cells) {
    if (cell.scenario != "squad") {
      EXPECT_EQ(cell.fleet_size, 1u);
      continue;
    }
    ++squad_cells;
    EXPECT_EQ(cell.fleet_size, 3u);
    EXPECT_NE(std::find(fleet_native.begin(), fleet_native.end(), cell.algorithm),
              fleet_native.end())
        << cell.algorithm << " is not fleet-native but played a fleet scenario";
  }
  EXPECT_EQ(squad_cells, fleet_native.size());

  // Scenario-major cell layout: every non-skipped scenario appears, roster
  // order within each group. "alpha" sorts first, so the first cells are its
  // roster in order.
  ASSERT_GE(result.cells.size(), result.algorithms.size());
  for (std::size_t i = 0; i < result.algorithms.size(); ++i) {
    EXPECT_EQ(result.cells[i].scenario, "alpha");
    EXPECT_EQ(result.cells[i].algorithm, result.algorithms[i]);
  }
}

TEST_F(TournamentTest, FleetScenarioSkippedWithoutFleetNativeRoster) {
  par::ThreadPool pool(2);
  TournamentOptions options;
  options.algorithms = {"MtC", "Lazy"};
  const TournamentResult result = run_tournament(dir_, pool, options);
  ASSERT_EQ(result.skipped.size(), 1u);
  EXPECT_EQ(result.skipped[0], "squad");
  for (const TournamentCell& cell : result.cells) EXPECT_NE(cell.scenario, "squad");
  for (const std::string& name : result.scenarios) EXPECT_NE(name, "squad");

  const std::string markdown = leaderboard_markdown(result);
  EXPECT_NE(markdown.find("skipped"), std::string::npos);
  EXPECT_NE(markdown.find("squad"), std::string::npos);
}

TEST_F(TournamentTest, OnlyFilterSelectsAndValidates) {
  par::ThreadPool pool(2);
  TournamentOptions options;
  options.algorithms = {"MtC", "GreedyCenter"};
  options.only = {"zig"};
  const TournamentResult result = run_tournament(dir_, pool, options);
  ASSERT_EQ(result.scenarios.size(), 1u);
  EXPECT_EQ(result.scenarios[0], "zig");
  EXPECT_EQ(result.cells.size(), 2u);

  options.only = {"no-such-scenario"};
  EXPECT_THROW((void)run_tournament(dir_, pool, options), ContractViolation);
}

TEST_F(TournamentTest, UnknownAndDuplicateAlgorithmsHandled) {
  par::ThreadPool pool(2);
  TournamentOptions options;
  options.algorithms = {"NoSuchStrategy"};
  EXPECT_THROW((void)run_tournament(dir_, pool, options), ContractViolation);

  // Duplicates collapse instead of double-playing (and double-counting Elo).
  options.algorithms = {"MtC", "MtC", "Lazy"};
  options.only = {"zig"};
  const TournamentResult result = run_tournament(dir_, pool, options);
  EXPECT_EQ(result.algorithms, (std::vector<std::string>{"MtC", "Lazy"}));
  EXPECT_EQ(result.cells.size(), 2u);
}

TEST_F(TournamentTest, EloBookkeepingInvariants) {
  par::ThreadPool pool(2);
  TournamentOptions options;
  options.algorithms = {"MtC", "GreedyCenter", "Lazy"};
  const TournamentResult result = run_tournament(dir_, pool, options);

  // Elo is zero-sum around the initial 1000 rating, the board is sorted
  // descending, and pairwise wins/losses balance.
  double elo_sum = 0.0;
  std::size_t wins = 0;
  std::size_t losses = 0;
  std::size_t draws = 0;
  for (std::size_t i = 0; i < result.leaderboard.size(); ++i) {
    const LeaderboardRow& row = result.leaderboard[i];
    elo_sum += row.elo;
    wins += row.wins;
    losses += row.losses;
    draws += row.draws;
    if (i > 0) {
      EXPECT_GE(result.leaderboard[i - 1].elo, row.elo);
    }
    EXPECT_EQ(row.scenarios, result.scenarios.size());
    EXPECT_GT(row.total_cost, 0.0);
    // Every cell on these workloads has positive cost, so each played
    // scenario contributed one ratio sample, and each ratio is >= 1.
    EXPECT_EQ(row.ratio_vs_best.count(), result.scenarios.size());
    EXPECT_GE(row.ratio_vs_best.min(), 1.0);
  }
  EXPECT_NEAR(elo_sum, 1000.0 * static_cast<double>(result.leaderboard.size()), 1e-6);
  EXPECT_EQ(wins, losses);
  EXPECT_EQ(draws % 2, 0u);
  // 3 algorithms -> 3 pairings per scenario.
  EXPECT_EQ(wins + losses + draws, 2 * 3 * result.scenarios.size());

  // Exactly one cell per scenario reports ratio_vs_best == 1 as the best.
  for (const std::string& name : result.scenarios) {
    std::size_t best_rows = 0;
    for (const TournamentCell& cell : result.cells)
      if (cell.scenario == name && cell.ratio_vs_best == 1.0) ++best_rows;
    EXPECT_GE(best_rows, 1u) << name;
  }
}

TEST_F(TournamentTest, JsonAndMarkdownCarryTheLeaderboard) {
  par::ThreadPool pool(2);
  TournamentOptions options;
  options.algorithms = {"MtC", "Lazy"};
  options.seed = 5;
  const TournamentResult result = run_tournament(dir_, pool, options);

  const io::Json doc = tournament_to_json(result);
  EXPECT_EQ(doc.at("v").as_uint64(), 1u);
  EXPECT_EQ(doc.at("seed").as_uint64(), 5u);
  EXPECT_EQ(doc.at("algorithms").as_array().size(), 2u);
  EXPECT_EQ(doc.at("leaderboard").as_array().size(), 2u);
  EXPECT_EQ(doc.at("cells").as_array().size(), result.cells.size());
  const io::Json& top = doc.at("leaderboard").as_array().front();
  EXPECT_TRUE(top.find("elo") != nullptr);
  EXPECT_TRUE(top.find("mean_ratio_vs_best") != nullptr);

  const std::string markdown = leaderboard_markdown(result);
  EXPECT_NE(markdown.find("| rank | algorithm | Elo |"), std::string::npos);
  EXPECT_NE(markdown.find("MtC"), std::string::npos);
  EXPECT_NE(markdown.find("Lazy"), std::string::npos);
}

TEST_F(TournamentTest, AdversaryRatiosReportedWhenAvailable) {
  write("lb.json",
        R"({"v": 1, "name": "lb", "kind": "theorem2",
            "params": {"horizon": 64, "r_max": 2}})");
  par::ThreadPool pool(2);
  TournamentOptions options;
  options.algorithms = {"MtC"};
  options.only = {"lb", "zig"};
  const TournamentResult result = run_tournament(dir_, pool, options);
  ASSERT_EQ(result.cells.size(), 2u);
  for (const TournamentCell& cell : result.cells) {
    if (cell.scenario == "lb") {
      EXPECT_GT(cell.ratio_vs_adversary, 0.0) << "theorem2 carries an adversary solution";
    } else {
      EXPECT_EQ(cell.ratio_vs_adversary, 0.0) << "zigzag has no adversary solution";
    }
  }
}

}  // namespace
}  // namespace mobsrv::scenario
