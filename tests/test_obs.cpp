// Tests for the obs layer: histogram bucket boundaries, nearest-rank
// percentile exactness on known distributions, merge associativity, the
// overflow bucket, counter/gauge semantics, registry registration rules,
// and the bounded event journal.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/contracts.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"

namespace mobsrv {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSummary;
using obs::Journal;
using obs::Registry;

TEST(Histogram, SmallValuesGetExactUnitBuckets) {
  // Values 0..7 land in their own bucket, so small-count percentiles are
  // exact, not log-rounded.
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_upper(static_cast<std::size_t>(v)), v);
  }
}

TEST(Histogram, BucketUpperBoundsAreInclusiveAndMonotonic) {
  std::uint64_t previous = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets - 1; ++i) {
    const std::uint64_t upper = Histogram::bucket_upper(i);
    if (i > 0) {
      EXPECT_GT(upper, previous) << "bucket " << i;
    }
    // The upper bound itself maps back into the bucket...
    EXPECT_EQ(Histogram::bucket_index(upper), i);
    // ...and the next value starts the next bucket.
    EXPECT_EQ(Histogram::bucket_index(upper + 1), i + 1);
    previous = upper;
  }
}

TEST(Histogram, PowersOfTwoLandOnSubBucketBoundaries) {
  for (int exp = 3; exp < 47; ++exp) {
    const std::uint64_t v = std::uint64_t{1} << exp;
    const std::size_t index = Histogram::bucket_index(v);
    // A power of two opens its octave: the previous value is in an earlier
    // bucket.
    EXPECT_EQ(Histogram::bucket_index(v - 1), index - 1) << "2^" << exp;
    // Relative bucket width stays under 1/8 (kSubBits=3 => 8 sub-buckets).
    const std::uint64_t upper = Histogram::bucket_upper(index);
    EXPECT_LT(static_cast<double>(upper - v) / static_cast<double>(v), 0.125);
  }
}

TEST(Histogram, OverflowBucketCatchesHugeValues) {
  Histogram h;
  const std::uint64_t huge = std::uint64_t{1} << 50;
  h.record(huge);
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 2u);
  // Percentiles from the overflow bucket clamp to the observed max, never
  // report a fictitious 2^64.
  EXPECT_EQ(h.percentile(0.5), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, NearestRankPercentilesAreExactOnSmallValues) {
  // Values < 8 are bucketed exactly, so nearest-rank answers are exact.
  Histogram h;
  for (std::uint64_t v : {1, 1, 2, 3}) h.record(v);
  EXPECT_EQ(h.percentile(0.50), 1u);  // rank ceil(0.5*4)=2 -> second 1
  EXPECT_EQ(h.percentile(0.75), 2u);
  EXPECT_EQ(h.percentile(1.00), 3u);
  EXPECT_EQ(h.percentile(0.01), 1u);

  Histogram uniform;
  for (std::uint64_t v = 1; v <= 100; ++v) uniform.record(v % 8);
  // 100 values cycling 0..7: ranks are exact because buckets are exact.
  EXPECT_EQ(uniform.percentile(0.5), 3u);
}

TEST(Histogram, SummaryMatchesDirectQueries) {
  Histogram h;
  std::uint64_t sum = 0;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    h.record(v * 37);
    sum += v * 37;
  }
  const HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, sum);
  EXPECT_EQ(s.p50, h.percentile(0.50));
  EXPECT_EQ(s.p90, h.percentile(0.90));
  EXPECT_EQ(s.p99, h.percentile(0.99));
  EXPECT_EQ(s.max, 999u * 37u);
  // Percentiles never exceed the true max even with log-scale buckets.
  EXPECT_LE(s.p99, s.max);
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  // Three histograms with interleaved pseudo-random-ish values.
  Histogram a;
  Histogram b;
  Histogram c;
  for (std::uint64_t v = 0; v < 300; ++v) {
    const std::uint64_t value = (v * 2654435761u) % 1000003;
    (v % 3 == 0 ? a : v % 3 == 1 ? b : c).record(value);
  }

  Histogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  Histogram a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.count(), 300u);
  EXPECT_EQ(ab_c.summary().p99, a_bc.summary().p99);
}

TEST(Histogram, ResetAndEmptyBehaviour) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(0.99), 0u);
  EXPECT_EQ(h.summary().count, 0u);
  h.record(42);
  EXPECT_FALSE(h.empty());
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(CounterGauge, Semantics) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);

  Gauge gauge;
  gauge.set(5);
  gauge.add(-8);
  EXPECT_EQ(gauge.value(), -3);
  gauge.raise_to(10);
  EXPECT_EQ(gauge.value(), 10);
  gauge.raise_to(7);  // never lowers
  EXPECT_EQ(gauge.value(), 10);
}

TEST(Registry, ReRegistrationReturnsTheSameInstrument) {
  Registry registry;
  Counter& first = registry.counter("x.total", "items", "help");
  first.inc(3);
  Counter& second = registry.counter("x.total", "items", "help");
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, KindMismatchFailsLoudly) {
  Registry registry;
  registry.counter("x.total", "items", "help");
  EXPECT_THROW(registry.gauge("x.total", "items", "help"), ContractViolation);
}

TEST(Registry, ToJsonPreservesRegistrationOrderAndValues) {
  Registry registry;
  registry.counter("a.total", "items", "first").inc(7);
  registry.gauge("b.now", "items", "second").set(-2);
  registry.histogram("c.ns", "ns", "third").record(5);

  const io::Json::Array metrics = registry.to_json();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].at("name").as_string(), "a.total");
  EXPECT_EQ(metrics[0].at("type").as_string(), "counter");
  EXPECT_EQ(metrics[0].at("value").as_uint64(), 7u);
  EXPECT_EQ(metrics[1].at("name").as_string(), "b.now");
  EXPECT_EQ(metrics[1].at("value").as_int64(), -2);
  EXPECT_EQ(metrics[2].at("name").as_string(), "c.ns");
  EXPECT_EQ(metrics[2].at("count").as_uint64(), 1u);
  EXPECT_EQ(metrics[2].at("p50").as_uint64(), 5u);
}

TEST(Journal, RecordsAndIteratesOldestFirst) {
  Journal journal(8);
  journal.record(obs::EventType::kOpen, "t1", "mtc");
  journal.record(obs::EventType::kBusy, "t1");
  journal.record(obs::EventType::kDrain);
  const std::vector<obs::Event> events = journal.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, obs::EventType::kOpen);
  EXPECT_EQ(events[0].tenant, "t1");
  EXPECT_EQ(events[0].detail, "mtc");
  EXPECT_EQ(events[2].type, obs::EventType::kDrain);
  EXPECT_EQ(journal.dropped(), 0u);
}

TEST(Journal, BoundedRingEvictsOldestAndCountsDrops) {
  Journal journal(4);
  for (int i = 0; i < 10; ++i) journal.record(obs::EventType::kBusy, "t");
  EXPECT_EQ(journal.total(), 10u);
  EXPECT_EQ(journal.dropped(), 6u);
  const std::vector<obs::Event> events = journal.events();
  ASSERT_EQ(events.size(), 4u);
  // Seq numbers stay continuous: the retained window is the newest 4.
  EXPECT_EQ(events.front().seq, 6u);
  EXPECT_EQ(events.back().seq, 9u);
}

TEST(Journal, EventToJsonSchema) {
  Journal journal(2);
  journal.record(obs::EventType::kError, "bad-tenant", "speed violation");
  const io::Json doc = Journal::event_to_json(journal.events().front());
  EXPECT_EQ(doc.at("seq").as_uint64(), 0u);
  EXPECT_GT(doc.at("ms").as_uint64(), 0u);
  EXPECT_EQ(doc.at("event").as_string(), "error");
  EXPECT_EQ(doc.at("tenant").as_string(), "bad-tenant");
  EXPECT_EQ(doc.at("detail").as_string(), "speed violation");

  // Service-wide events omit the empty tenant/detail members.
  journal.record(obs::EventType::kDrain);
  const io::Json drain = Journal::event_to_json(journal.events().back());
  EXPECT_EQ(drain.find("tenant"), nullptr);
  EXPECT_EQ(drain.find("detail"), nullptr);
}

}  // namespace
}  // namespace mobsrv
