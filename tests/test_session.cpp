// Tests for the incremental session engine (sim/session.hpp): streaming a
// workload step-by-step must reproduce sim::run() bit-identically for every
// registered algorithm, enforce the speed limit under both policies, and
// account empty batches correctly.
#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "sim/session.hpp"
#include "stats/rng.hpp"

namespace mobsrv {
namespace {

using geo::Point;

/// A drifting-hotspot-style stream that also contains EMPTY batches (the
/// generator forbids r_min = 0, but live traffic has quiet rounds).
sim::Instance sample_workload(int dim, std::uint64_t seed, std::size_t horizon = 60) {
  stats::Rng rng(seed);
  sim::ModelParams params;
  params.move_cost_weight = 3.0;
  std::vector<sim::RequestBatch> steps(horizon);
  Point hotspot = Point::zero(dim);
  for (auto& step : steps) {
    for (int d = 0; d < dim; ++d) hotspot[d] += rng.uniform(-0.5, 0.5);
    const auto r = static_cast<std::size_t>(rng.uniform_int(0, 5));
    for (std::size_t i = 0; i < r; ++i) {
      Point v = hotspot;
      for (int d = 0; d < dim; ++d) v[d] += rng.uniform(-2.0, 2.0);
      step.requests.push_back(v);
    }
  }
  return sim::Instance(Point::zero(dim), params, std::move(steps));
}

/// Proposes start + huge on every step — a speed-limit violator.
class Runaway final : public sim::OnlineAlgorithm {
 public:
  Point decide(const sim::StepView& view) override {
    Point p = view.server;
    p[0] += 100.0;
    return p;
  }
  std::string name() const override { return "Runaway"; }
};

TEST(Session, MatchesRunBitIdenticallyForEveryAlgorithm) {
  for (const std::string& name : alg::algorithm_names()) {
    for (const int dim : {1, 2}) {
      const sim::Instance instance = sample_workload(dim, 7);
      sim::RunOptions options;
      options.speed_factor = 1.5;

      const sim::AlgorithmPtr batch_algo = alg::make_algorithm(name, 42);
      const sim::RunResult reference = sim::run(instance, *batch_algo, options);

      const sim::AlgorithmPtr stream_algo = alg::make_algorithm(name, 42);
      sim::Session session(instance.start(), instance.params(), *stream_algo, options);
      for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));

      // EXACT equality: the wrapper and the stream are the same accounting.
      EXPECT_EQ(session.total_cost(), reference.total_cost) << name << " dim " << dim;
      EXPECT_EQ(session.move_cost(), reference.move_cost) << name;
      EXPECT_EQ(session.service_cost(), reference.service_cost) << name;
      EXPECT_EQ(session.position(), reference.final_position) << name;
      EXPECT_EQ(session.positions(), reference.positions) << name;
    }
  }
}

TEST(Session, AnswerFirstOrderStreamsIdentically) {
  const sim::Instance instance =
      sample_workload(1, 11).with_order(sim::ServiceOrder::kServeThenMove);
  const sim::AlgorithmPtr a = alg::make_algorithm("MtC");
  const sim::AlgorithmPtr b = alg::make_algorithm("MtC");
  const sim::RunResult reference = sim::run(instance, *a);
  sim::Session session(instance.start(), instance.params(), *b);
  for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
  EXPECT_EQ(session.total_cost(), reference.total_cost);
  EXPECT_EQ(session.service_cost(), reference.service_cost);
}

TEST(Session, OutcomesSumToTotals) {
  const sim::Instance instance = sample_workload(2, 3);
  const sim::AlgorithmPtr algo = alg::make_algorithm("GreedyCenter");
  sim::Session session(instance.start(), instance.params(), *algo);
  double move = 0.0, service = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const sim::StepOutcome outcome = session.push(instance.step(t));
    EXPECT_EQ(outcome.t, t);
    EXPECT_EQ(outcome.position, session.position());
    move += outcome.cost.move;
    service += outcome.cost.service;
  }
  EXPECT_EQ(session.steps(), instance.horizon());
  EXPECT_DOUBLE_EQ(session.move_cost(), move);
  EXPECT_DOUBLE_EQ(session.service_cost(), service);
  EXPECT_DOUBLE_EQ(session.total_cost(), move + service);
}

TEST(Session, EmptyBatchChargesOnlyMovement) {
  sim::ModelParams params;
  params.move_cost_weight = 2.0;
  const sim::AlgorithmPtr lazy = alg::make_algorithm("Lazy");
  sim::Session session(Point{0.0}, params, *lazy);
  const sim::StepOutcome outcome = session.push(sim::RequestBatch{});
  EXPECT_EQ(outcome.cost.move, 0.0);
  EXPECT_EQ(outcome.cost.service, 0.0);
  EXPECT_EQ(session.total_cost(), 0.0);
  EXPECT_EQ(session.steps(), 1u);

  // A chaser also stays put on an empty batch (nothing to chase).
  const sim::AlgorithmPtr mtc = alg::make_algorithm("MtC");
  sim::Session chasing(Point{3.0}, params, *mtc);
  EXPECT_EQ(chasing.push(sim::RequestBatch{}).position, Point{3.0});
  EXPECT_EQ(chasing.total_cost(), 0.0);
}

TEST(Session, ThrowPolicyRejectsSpeedViolation) {
  sim::ModelParams params;  // m = 1
  Runaway runaway;
  sim::Session session(Point{0.0}, params, runaway);
  sim::RequestBatch batch;
  batch.requests = {Point{50.0}};
  EXPECT_THROW(session.push(batch), ContractViolation);
}

TEST(Session, ClampPolicyClampsAndAccounts) {
  sim::ModelParams params;  // m = 1, D = 1
  sim::RunOptions options;
  options.policy = sim::SpeedLimitPolicy::kClamp;
  Runaway runaway;
  sim::Session session(Point{0.0}, params, runaway, options);

  sim::RequestBatch batch;
  batch.requests = {Point{10.0}};
  const sim::StepOutcome first = session.push(batch);
  EXPECT_TRUE(first.clamped);
  EXPECT_NEAR(first.position[0], 1.0, 1e-12);  // clamped to m = 1 toward the proposal
  EXPECT_NEAR(first.cost.move, 1.0, 1e-12);    // D·1
  EXPECT_NEAR(first.cost.service, 9.0, 1e-12); // served from the CLAMPED position

  const sim::StepOutcome second = session.push(batch);
  EXPECT_TRUE(second.clamped);
  EXPECT_NEAR(second.position[0], 2.0, 1e-12);
  EXPECT_EQ(session.steps(), 2u);

  // A within-limit proposal is not flagged.
  const sim::AlgorithmPtr lazy = alg::make_algorithm("Lazy");
  sim::Session tame(Point{0.0}, params, *lazy, options);
  EXPECT_FALSE(tame.push(batch).clamped);
}

TEST(Session, ClampMatchesRunUnderClampPolicy) {
  const sim::Instance instance = sample_workload(1, 9, 40);
  sim::RunOptions options;
  options.policy = sim::SpeedLimitPolicy::kClamp;
  Runaway a, b;
  const sim::RunResult reference = sim::run(instance, a, options);
  sim::Session session(instance.start(), instance.params(), b, options);
  for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
  EXPECT_EQ(session.total_cost(), reference.total_cost);
  EXPECT_EQ(session.position(), reference.final_position);
}

TEST(Session, RecordsTraceAndPositionsOnRequest) {
  const sim::Instance instance = sample_workload(1, 5, 20);
  sim::RunOptions options;
  options.record_trace = true;
  const sim::AlgorithmPtr a = alg::make_algorithm("MtC");
  const sim::AlgorithmPtr b = alg::make_algorithm("MtC");
  const sim::RunResult reference = sim::run(instance, *a, options);
  sim::Session session(instance.start(), instance.params(), *b, options);
  for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
  ASSERT_EQ(session.trace().size(), reference.trace.size());
  for (std::size_t t = 0; t < reference.trace.size(); ++t) {
    EXPECT_EQ(session.trace()[t].before, reference.trace[t].before);
    EXPECT_EQ(session.trace()[t].after, reference.trace[t].after);
    EXPECT_EQ(session.trace()[t].cost.move, reference.trace[t].cost.move);
    EXPECT_EQ(session.trace()[t].cost.service, reference.trace[t].cost.service);
  }
}

TEST(Session, PositionRecordingCanBeDisabled) {
  const sim::Instance instance = sample_workload(1, 5, 20);
  sim::RunOptions options;
  options.record_positions = false;
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  sim::Session session(instance.start(), instance.params(), *algo, options);
  for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
  EXPECT_TRUE(session.positions().empty());  // O(1) memory for streaming tenants
  EXPECT_GT(session.total_cost(), 0.0);
}

}  // namespace
}  // namespace mobsrv
