// Unit tests for sim/engine.hpp: the referee between algorithms and the
// model — speed-limit enforcement, cost accounting per service order,
// tracing, and the moving-client conversion.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/moving_client.hpp"

namespace mobsrv::sim {
namespace {

ModelParams make_params(double d_weight, double m,
                        ServiceOrder order = ServiceOrder::kMoveThenServe) {
  ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  p.order = order;
  return p;
}

/// Scripted algorithm: returns pre-programmed positions (for testing the
/// engine itself, not a strategy).
class Scripted final : public OnlineAlgorithm {
 public:
  explicit Scripted(std::vector<Point> moves) : moves_(std::move(moves)) {}
  Point decide(const StepView& view) override { return moves_.at(view.t); }
  std::string name() const override { return "Scripted"; }

 private:
  std::vector<Point> moves_;
};

/// Algorithm that records what the engine shows it.
class Spy final : public OnlineAlgorithm {
 public:
  void reset(const Point& start, const ModelParams& params) override {
    reset_calls++;
    start_seen = start;
    order_seen = params.order;
  }
  Point decide(const StepView& view) override {
    limits.push_back(view.speed_limit);
    batch_sizes.push_back(view.batch.size());
    servers.push_back(view.server);
    return view.server;  // never moves
  }
  std::string name() const override { return "Spy"; }

  int reset_calls = 0;
  Point start_seen;
  ServiceOrder order_seen = ServiceOrder::kMoveThenServe;
  std::vector<double> limits;
  std::vector<std::size_t> batch_sizes;
  std::vector<Point> servers;
};

Instance two_step_instance(ServiceOrder order = ServiceOrder::kMoveThenServe) {
  std::vector<RequestBatch> steps(2);
  steps[0].requests = {Point{2.0}};
  steps[1].requests = {Point{2.0}, Point{4.0}};
  return Instance(Point{0.0}, make_params(2.0, 1.0, order), steps);
}

TEST(Engine, RevealsStepsInOrderWithLimits) {
  const Instance inst = two_step_instance();
  Spy spy;
  RunOptions opt;
  opt.speed_factor = 1.5;
  const RunResult res = run(inst, spy, opt);
  EXPECT_EQ(spy.reset_calls, 1);
  EXPECT_EQ(spy.start_seen, Point{0.0});
  ASSERT_EQ(spy.limits.size(), 2u);
  EXPECT_DOUBLE_EQ(spy.limits[0], 1.5);
  EXPECT_EQ(spy.batch_sizes[0], 1u);
  EXPECT_EQ(spy.batch_sizes[1], 2u);
  EXPECT_EQ(res.final_position, Point{0.0});
}

TEST(Engine, CostAccountingMoveThenServe) {
  const Instance inst = two_step_instance();
  Scripted alg({Point{1.0}, Point{2.0}});
  const RunResult res = run(inst, alg);
  // Step 0: move 2·1=2, serve |1-2|=1. Step 1: move 2·1=2, serve 0+2=2.
  EXPECT_DOUBLE_EQ(res.move_cost, 4.0);
  EXPECT_DOUBLE_EQ(res.service_cost, 3.0);
  EXPECT_DOUBLE_EQ(res.total_cost, 7.0);
  EXPECT_EQ(res.final_position, Point{2.0});
}

TEST(Engine, CostAccountingAnswerFirst) {
  const Instance inst = two_step_instance(ServiceOrder::kServeThenMove);
  Scripted alg({Point{1.0}, Point{2.0}});
  const RunResult res = run(inst, alg);
  // Step 0: serve from 0: 2; move 2. Step 1: serve from 1: 1+3=4; move 2.
  EXPECT_DOUBLE_EQ(res.service_cost, 6.0);
  EXPECT_DOUBLE_EQ(res.move_cost, 4.0);
}

TEST(Engine, PositionsAlwaysRecorded) {
  const Instance inst = two_step_instance();
  Scripted alg({Point{1.0}, Point{1.5}});
  const RunResult res = run(inst, alg);
  ASSERT_EQ(res.positions.size(), 3u);
  EXPECT_EQ(res.positions[0], Point{0.0});
  EXPECT_EQ(res.positions[1], Point{1.0});
  EXPECT_EQ(res.positions[2], Point{1.5});
  EXPECT_TRUE(res.trace.empty());  // not requested
}

TEST(Engine, TraceRecordsStepCosts) {
  const Instance inst = two_step_instance();
  Scripted alg({Point{1.0}, Point{2.0}});
  RunOptions opt;
  opt.record_trace = true;
  const RunResult res = run(inst, alg, opt);
  ASSERT_EQ(res.trace.size(), 2u);
  EXPECT_EQ(res.trace[0].before, Point{0.0});
  EXPECT_EQ(res.trace[0].after, Point{1.0});
  EXPECT_DOUBLE_EQ(res.trace[0].cost.move, 2.0);
  EXPECT_DOUBLE_EQ(res.trace[0].cost.service, 1.0);
  EXPECT_DOUBLE_EQ(res.trace[1].cost.total(), 4.0);
}

TEST(Engine, SpeedViolationThrowsByDefault) {
  const Instance inst = two_step_instance();  // m = 1
  Scripted alg({Point{1.1}, Point{2.0}});
  EXPECT_THROW((void)run(inst, alg), ContractViolation);
}

TEST(Engine, SpeedViolationClampedWhenRequested) {
  const Instance inst = two_step_instance();
  Scripted alg({Point{5.0}, Point{5.0}});
  RunOptions opt;
  opt.policy = SpeedLimitPolicy::kClamp;
  const RunResult res = run(inst, alg, opt);
  EXPECT_EQ(res.positions[1], Point{1.0});  // clamped to m
  EXPECT_EQ(res.positions[2], Point{2.0});
}

TEST(Engine, AugmentationWidensTheLimit) {
  const Instance inst = two_step_instance();
  Scripted alg({Point{1.4}, Point{2.0}});
  RunOptions opt;
  opt.speed_factor = 1.5;
  EXPECT_NO_THROW((void)run(inst, alg, opt));
}

TEST(Engine, ExactLimitMoveAccepted) {
  const Instance inst = two_step_instance();
  Scripted alg({Point{1.0}, Point{2.0}});
  EXPECT_NO_THROW((void)run(inst, alg));
}

TEST(Engine, SpeedFactorBelowOneRejected) {
  const Instance inst = two_step_instance();
  Scripted alg({Point{0.0}, Point{0.0}});
  RunOptions opt;
  opt.speed_factor = 0.5;
  EXPECT_THROW((void)run(inst, alg, opt), ContractViolation);
}

TEST(Engine, DimensionChangeRejected) {
  class Saboteur final : public OnlineAlgorithm {
   public:
    Point decide(const StepView&) override { return Point{0.0, 0.0}; }
    std::string name() const override { return "Saboteur"; }
  };
  const Instance inst = two_step_instance();
  Saboteur alg;
  EXPECT_THROW((void)run(inst, alg), ContractViolation);
}

TEST(Engine, EmptyInstanceIsZeroCost) {
  const Instance inst(Point{0.0}, make_params(1.0, 1.0), std::vector<RequestBatch>{});
  Spy spy;
  const RunResult res = run(inst, spy);
  EXPECT_EQ(res.total_cost, 0.0);
  EXPECT_EQ(res.positions.size(), 1u);
}

TEST(MovingClient, ValidateAcceptsLegalPaths) {
  MovingClientInstance mc;
  mc.start = Point{0.0};
  mc.server_speed = 1.0;
  mc.agent_speed = 2.0;
  mc.move_cost_weight = 3.0;
  AgentPath path;
  path.positions = {Point{1.5}, Point{3.0}, Point{3.0}};
  mc.agents.push_back(path);
  EXPECT_NO_THROW(mc.validate());
  EXPECT_EQ(mc.horizon(), 3u);
}

TEST(MovingClient, ValidateRejectsSpeeding) {
  MovingClientInstance mc;
  mc.start = Point{0.0};
  mc.server_speed = 1.0;
  mc.agent_speed = 1.0;
  AgentPath path;
  path.positions = {Point{1.5}};  // jump of 1.5 > m_a = 1
  mc.agents.push_back(path);
  EXPECT_THROW(mc.validate(), ContractViolation);
}

TEST(MovingClient, ValidateRejectsMismatchedHorizons) {
  MovingClientInstance mc;
  mc.start = Point{0.0};
  AgentPath a, b;
  a.positions = {Point{0.5}};
  b.positions = {Point{0.5}, Point{1.0}};
  mc.agents = {a, b};
  EXPECT_THROW(mc.validate(), ContractViolation);
}

TEST(MovingClient, ConversionProducesOneRequestPerAgent) {
  MovingClientInstance mc;
  mc.start = Point{0.0, 0.0};
  mc.server_speed = 2.0;
  mc.agent_speed = 1.0;
  mc.move_cost_weight = 5.0;
  AgentPath a, b;
  a.positions = {Point{1.0, 0.0}, Point{2.0, 0.0}};
  b.positions = {Point{0.0, 1.0}, Point{0.0, 2.0}};
  mc.agents = {a, b};
  const Instance inst = to_instance(mc);
  EXPECT_EQ(inst.horizon(), 2u);
  EXPECT_EQ(inst.params().max_step, 2.0);
  EXPECT_EQ(inst.params().move_cost_weight, 5.0);
  EXPECT_EQ(inst.params().order, ServiceOrder::kMoveThenServe);
  ASSERT_EQ(inst.step(0).size(), 2u);
  EXPECT_EQ(inst.step(0)[0], (Point{1.0, 0.0}));
  EXPECT_EQ(inst.step(0)[1], (Point{0.0, 1.0}));
}

TEST(MovingClient, CostMatchesPaperFormula) {
  // Section 5: cost = Σ (D·d(P_{t-1},P_t) + d(P_t, A_t)) — exactly the
  // Move-First accounting on the converted instance.
  MovingClientInstance mc;
  mc.start = Point{0.0};
  mc.server_speed = 1.0;
  mc.agent_speed = 1.0;
  mc.move_cost_weight = 2.0;
  AgentPath a;
  a.positions = {Point{1.0}, Point{2.0}};
  mc.agents = {a};
  const Instance inst = to_instance(mc);
  // Server trajectory: 0 -> 1 -> 2 (rides with the agent).
  const std::vector<Point> traj{Point{0.0}, Point{1.0}, Point{2.0}};
  EXPECT_DOUBLE_EQ(trajectory_cost(inst, traj), 2.0 + 0.0 + 2.0 + 0.0);
}

}  // namespace
}  // namespace mobsrv::sim
