// Unit tests for the two registries: name-based algorithm construction
// (algorithms/registry.hpp) and the bench scenario registry + --only
// selection parsing (bench/registry.hpp).
#include "algorithms/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "registry.hpp"

namespace mobsrv {
namespace {

TEST(AlgorithmRegistry, MakesEveryRegisteredName) {
  for (const std::string& name : alg::algorithm_names()) {
    const sim::AlgorithmPtr algorithm = alg::make_algorithm(name, /*seed=*/7);
    ASSERT_NE(algorithm, nullptr) << name;
  }
}

TEST(AlgorithmRegistry, UnknownNameThrows) {
  EXPECT_THROW(alg::make_algorithm("NoSuchAlgorithm"), ContractViolation);
  EXPECT_THROW(alg::make_algorithm(""), ContractViolation);
  EXPECT_THROW(alg::make_algorithm("mtc"), ContractViolation);  // names are case-sensitive
}

TEST(AlgorithmRegistry, NamesAreInShootoutDisplayOrder) {
  const std::vector<std::string> expected{"MtC", "GreedyCenter", "MoveToMin", "CoinFlip", "Lazy"};
  EXPECT_EQ(alg::algorithm_names(), expected);
}

TEST(OnlyListParsing, SplitsTrimsAndDeduplicates) {
  using bench::parse_only_list;
  EXPECT_TRUE(parse_only_list("").empty());
  EXPECT_EQ(parse_only_list("e01"), (std::vector<std::string>{"e01"}));
  EXPECT_EQ(parse_only_list("e01,e05"), (std::vector<std::string>{"e01", "e05"}));
  EXPECT_EQ(parse_only_list(" e01 , e05 "), (std::vector<std::string>{"e01", "e05"}));
  EXPECT_EQ(parse_only_list("e01,,e05,"), (std::vector<std::string>{"e01", "e05"}));
  EXPECT_EQ(parse_only_list("e05,e01,e05"), (std::vector<std::string>{"e05", "e01"}));
}

bench::Registry make_registry() {
  bench::Registry registry;
  registry.add({"e02", "second", [](const bench::Options&) {}});
  registry.add({"e01", "first", [](const bench::Options&) {}});
  registry.add({"e10", "tenth", [](const bench::Options&) {}});
  return registry;
}

TEST(BenchRegistry, ExperimentsAreSortedById) {
  const bench::Registry registry = make_registry();
  const std::vector<bench::Experiment> all = registry.experiments();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, "e01");
  EXPECT_EQ(all[1].id, "e02");
  EXPECT_EQ(all[2].id, "e10");
}

TEST(BenchRegistry, DuplicateIdThrows) {
  bench::Registry registry = make_registry();
  EXPECT_THROW(registry.add({"e01", "again", [](const bench::Options&) {}}), ContractViolation);
}

TEST(BenchRegistry, EmptySelectionReturnsEverything) {
  const bench::Registry registry = make_registry();
  EXPECT_EQ(registry.select({}).size(), 3u);
}

TEST(BenchRegistry, SelectionPreservesRequestOrder) {
  const bench::Registry registry = make_registry();
  const std::vector<bench::Experiment> selected = registry.select({"e10", "e01"});
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].id, "e10");
  EXPECT_EQ(selected[0].title, "tenth");
  EXPECT_EQ(selected[1].id, "e01");
}

TEST(BenchRegistry, UnknownSelectionThrows) {
  const bench::Registry registry = make_registry();
  EXPECT_THROW(registry.select({"e99"}), ContractViolation);
  EXPECT_THROW(registry.select({"e01", "bogus"}), ContractViolation);
}

TEST(BenchRegistry, EndToEndOnlyFlagSelection) {
  const bench::Registry registry = make_registry();
  const std::vector<bench::Experiment> selected =
      registry.select(bench::parse_only_list("e01, e10"));
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].id, "e01");
  EXPECT_EQ(selected[1].id, "e10");
}

TEST(BenchOptions, GlobalSeedThreadsIntoEveryStream) {
  bench::Options a, b, c;
  a.seed = 0;
  b.seed = 0;
  c.seed = 1;
  // Same --seed: identical keys (and thus identical experiment results).
  EXPECT_EQ(a.seed_key("e01", {128}), b.seed_key("e01", {128}));
  // Different --seed: every stream decorrelates.
  EXPECT_NE(a.seed_key("e01", {128}), c.seed_key("e01", {128}));
  // Streams and row keys stay distinct under a fixed seed.
  EXPECT_NE(a.seed_key("e01", {128}), a.seed_key("e02", {128}));
  EXPECT_NE(a.seed_key("e01", {128}), a.seed_key("e01", {256}));
  // rng() derives from the same key: identical draws for identical seeds.
  stats::Rng ra = a.rng("e05", {4});
  stats::Rng rb = b.rng("e05", {4});
  EXPECT_EQ(ra(), rb());
  // ratio_options carries trials + key.
  a.trials = 9;
  const core::RatioOptions opt = a.ratio_options("e01", {128});
  EXPECT_EQ(opt.trials, 9);
  EXPECT_EQ(opt.seed_key, a.seed_key("e01", {128}));
  EXPECT_FALSE(static_cast<bool>(opt.observe));  // no recorder configured
}

TEST(BenchReport, CapturesTablesAndChecksAsJson) {
  bench::Report report;
  report.trials = 2;
  report.scale = 0.5;
  report.seed = 42;
  report.begin_experiment("e01", "first experiment");
  io::Table table("demo", {"a", "b"});
  table.row().cell("x").cell(1.5).done();
  report.add_table(table);
  report.add_check({"fit", "slope", 0.5, 0.35, 0.65, true});
  report.end_experiment(1.25);

  const io::Json json = io::Json::parse(report.to_json().dump());
  EXPECT_EQ(json.at("tool").as_string(), "mobsrv_bench");
  EXPECT_EQ(json.at("seed").as_uint64(), 42u);
  const auto& experiments = json.at("experiments").as_array();
  ASSERT_EQ(experiments.size(), 1u);
  EXPECT_EQ(experiments[0].at("id").as_string(), "e01");
  EXPECT_EQ(experiments[0].at("tables").as_array().size(), 1u);
  const auto& rows = experiments[0].at("tables").as_array()[0].at("rows").as_array();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].as_array()[1].as_string(), "1.5");
  const auto& checks = experiments[0].at("checks").as_array();
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_TRUE(checks[0].at("pass").as_bool());
}

TEST(BenchReport, AddingOutsideAnExperimentThrows) {
  bench::Report report;
  io::Table table("demo", {"a"});
  EXPECT_THROW(report.add_table(table), ContractViolation);
  EXPECT_THROW(report.end_experiment(1.0), ContractViolation);
}

}  // namespace
}  // namespace mobsrv
