// Unit tests for the two registries: name-based algorithm construction
// (algorithms/registry.hpp) and the bench scenario registry + --only
// selection parsing (bench/registry.hpp).
#include "algorithms/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "registry.hpp"

namespace mobsrv {
namespace {

TEST(AlgorithmRegistry, MakesEveryRegisteredName) {
  for (const std::string& name : alg::algorithm_names()) {
    const sim::AlgorithmPtr algorithm = alg::make_algorithm(name, /*seed=*/7);
    ASSERT_NE(algorithm, nullptr) << name;
  }
}

TEST(AlgorithmRegistry, UnknownNameThrows) {
  EXPECT_THROW(alg::make_algorithm("NoSuchAlgorithm"), ContractViolation);
  EXPECT_THROW(alg::make_algorithm(""), ContractViolation);
  EXPECT_THROW(alg::make_algorithm("mtc"), ContractViolation);  // names are case-sensitive
}

TEST(AlgorithmRegistry, NamesAreInShootoutDisplayOrder) {
  const std::vector<std::string> expected{"MtC", "GreedyCenter", "MoveToMin", "CoinFlip", "Lazy"};
  EXPECT_EQ(alg::algorithm_names(), expected);
}

TEST(OnlyListParsing, SplitsTrimsAndDeduplicates) {
  using bench::parse_only_list;
  EXPECT_TRUE(parse_only_list("").empty());
  EXPECT_EQ(parse_only_list("e01"), (std::vector<std::string>{"e01"}));
  EXPECT_EQ(parse_only_list("e01,e05"), (std::vector<std::string>{"e01", "e05"}));
  EXPECT_EQ(parse_only_list(" e01 , e05 "), (std::vector<std::string>{"e01", "e05"}));
  EXPECT_EQ(parse_only_list("e01,,e05,"), (std::vector<std::string>{"e01", "e05"}));
  EXPECT_EQ(parse_only_list("e05,e01,e05"), (std::vector<std::string>{"e05", "e01"}));
}

bench::Registry make_registry() {
  bench::Registry registry;
  registry.add({"e02", "second", [](const bench::Options&) {}});
  registry.add({"e01", "first", [](const bench::Options&) {}});
  registry.add({"e10", "tenth", [](const bench::Options&) {}});
  return registry;
}

TEST(BenchRegistry, ExperimentsAreSortedById) {
  const bench::Registry registry = make_registry();
  const std::vector<bench::Experiment> all = registry.experiments();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, "e01");
  EXPECT_EQ(all[1].id, "e02");
  EXPECT_EQ(all[2].id, "e10");
}

TEST(BenchRegistry, DuplicateIdThrows) {
  bench::Registry registry = make_registry();
  EXPECT_THROW(registry.add({"e01", "again", [](const bench::Options&) {}}), ContractViolation);
}

TEST(BenchRegistry, EmptySelectionReturnsEverything) {
  const bench::Registry registry = make_registry();
  EXPECT_EQ(registry.select({}).size(), 3u);
}

TEST(BenchRegistry, SelectionPreservesRequestOrder) {
  const bench::Registry registry = make_registry();
  const std::vector<bench::Experiment> selected = registry.select({"e10", "e01"});
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].id, "e10");
  EXPECT_EQ(selected[0].title, "tenth");
  EXPECT_EQ(selected[1].id, "e01");
}

TEST(BenchRegistry, UnknownSelectionThrows) {
  const bench::Registry registry = make_registry();
  EXPECT_THROW(registry.select({"e99"}), ContractViolation);
  EXPECT_THROW(registry.select({"e01", "bogus"}), ContractViolation);
}

TEST(BenchRegistry, EndToEndOnlyFlagSelection) {
  const bench::Registry registry = make_registry();
  const std::vector<bench::Experiment> selected =
      registry.select(bench::parse_only_list("e01, e10"));
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].id, "e01");
  EXPECT_EQ(selected[1].id, "e10");
}

}  // namespace
}  // namespace mobsrv
