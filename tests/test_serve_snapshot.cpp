// Tests for the MSRVSS2 segmented snapshot codec (serve/snapshot.hpp):
//   * base + delta chains merge in order (open/close/upsert semantics);
//   * incremental saves cost O(progress): delta bytes scale with the
//     number of dirty slots, not the population — the acceptance assert;
//   * a torn trailing segment (crash mid-append) is silently dropped, a
//     complete segment with a bad CRC fails loudly;
//   * monolithic v1 snapshot files are still readable;
//   * inspect_snapshot reports the chain shape the compaction policy uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/session_multiplexer.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/snapshot.hpp"
#include "serve/tenant_table.hpp"
#include "trace/checkpoint.hpp"

namespace mobsrv {
namespace {

namespace fs = std::filesystem;
using serve::ServiceSnapshot;
using serve::SnapshotFileInfo;
using serve::SnapshotSegment;

/// A real tenant table + mux, the way Service drives them: valid specs,
/// growable workloads, genuine engine checkpoint records.
struct Harness {
  par::ThreadPool pool{2};
  core::SessionMultiplexer mux{pool};
  serve::TenantTable table;

  serve::Tenant& open(const std::string& name, std::size_t steps) {
    serve::TenantSpec spec;
    spec.tenant = name;
    spec.algorithm = "MtC";
    spec.dim = 2;
    spec.speed_factor = 1.5;
    spec.starts = {sim::Point::zero(2)};
    serve::Tenant& tenant = table.admit(std::move(spec), mux);
    feed(tenant, steps);
    return tenant;
  }

  void feed(serve::Tenant& tenant, std::size_t steps) {
    sim::RequestBatch batch;
    batch.requests = {geo::Point{1.25, -0.5}};
    for (std::size_t t = 0; t < steps; ++t) tenant.workload->push_step(batch);
    mux.poke(tenant.slot);
  }

  [[nodiscard]] SnapshotSegment base_segment() const {
    SnapshotSegment segment;
    for (const auto& tenant : table.entries()) {
      segment.opened.push_back(tenant->spec);
      segment.opened_slots.push_back(tenant->slot);
      segment.record_slots.push_back(tenant->slot);
      segment.records.push_back(mux.checkpoint_slot(tenant->slot));
    }
    return segment;
  }

  [[nodiscard]] SnapshotSegment dirty_delta() const {
    SnapshotSegment segment;
    for (const std::size_t slot : mux.dirty_slots()) {
      segment.record_slots.push_back(slot);
      segment.records.push_back(mux.checkpoint_slot(slot));
    }
    return segment;
  }
};

class ServeSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_snap_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ServeSnapshotTest, BaseThenDeltasMergeInOrder) {
  Harness h;
  h.open("alpha", 6);
  h.open("beta", 6);
  h.mux.drain();
  h.mux.mark_saved();
  const fs::path path = dir_ / "chain.msrvss";
  serve::write_snapshot_base(path, h.base_segment());

  // Only alpha steps: the delta carries exactly one record.
  h.feed(*h.table.find("alpha"), 3);
  h.mux.drain();
  SnapshotSegment delta = h.dirty_delta();
  ASSERT_EQ(delta.records.size(), 1u);
  EXPECT_EQ(delta.records[0].tenant, "alpha");
  h.mux.mark_saved();
  serve::append_snapshot_delta(path, delta);

  // A newly opened tenant rides a later delta (spec + record together);
  // beta closes in the same one.
  serve::Tenant& gamma = h.open("gamma", 4);
  h.mux.drain();
  SnapshotSegment churn;
  churn.opened.push_back(gamma.spec);
  churn.opened_slots.push_back(gamma.slot);
  churn.closed_slots.push_back(h.table.find("beta")->slot);
  h.mux.close(h.table.find("beta")->slot);
  h.table.erase("beta");
  for (const std::size_t slot : h.mux.dirty_slots()) {
    churn.record_slots.push_back(slot);
    churn.records.push_back(h.mux.checkpoint_slot(slot));
  }
  serve::append_snapshot_delta(path, churn);

  const ServiceSnapshot merged = serve::read_snapshot(path);
  ASSERT_EQ(merged.tenants.size(), 2u);
  EXPECT_EQ(merged.tenants[0].tenant, "alpha");
  EXPECT_EQ(merged.tenants[1].tenant, "gamma");
  EXPECT_EQ(merged.records[0].cursor, 9u);  // 6 base + 3 delta
  EXPECT_EQ(merged.records[1].cursor, 4u);
  // The engine state round-trips bit-exactly through the chain.
  const core::SessionCheckpointRecord live = h.mux.checkpoint_slot(h.table.find("alpha")->slot);
  EXPECT_EQ(trace::encode_checkpoint({merged.records[0]}), trace::encode_checkpoint({live}));
}

TEST_F(ServeSnapshotTest, DeltaBytesScaleWithProgressNotPopulation) {
  // The acceptance assert: an incremental save re-serialises the dirty
  // slots only, so its size tracks steps-since-save, not session count.
  Harness h;
  constexpr std::size_t kTenants = 32;
  for (std::size_t t = 0; t < kTenants; ++t)
    h.open("tenant-" + std::to_string(t), 4);
  h.mux.drain();
  h.mux.mark_saved();
  const fs::path path = dir_ / "scale.msrvss";
  const std::uint64_t base_bytes = serve::write_snapshot_base(path, h.base_segment());

  h.feed(*h.table.find("tenant-0"), 2);
  h.mux.drain();
  const SnapshotSegment one_dirty = h.dirty_delta();
  ASSERT_EQ(one_dirty.records.size(), 1u);
  const std::uint64_t one_bytes = serve::append_snapshot_delta(path, one_dirty);
  h.mux.mark_saved();

  for (std::size_t t = 0; t < 8; ++t) h.feed(*h.table.find("tenant-" + std::to_string(t)), 2);
  h.mux.drain();
  const SnapshotSegment eight_dirty = h.dirty_delta();
  ASSERT_EQ(eight_dirty.records.size(), 8u);
  const std::uint64_t eight_bytes = serve::append_snapshot_delta(path, eight_dirty);
  h.mux.mark_saved();

  EXPECT_LT(one_bytes, eight_bytes);
  EXPECT_LT(eight_bytes, base_bytes);
  EXPECT_LT(one_bytes * 4, base_bytes)
      << "a one-slot delta must be far smaller than a " << kTenants << "-session base";

  // The merged chain still reflects every save.
  const ServiceSnapshot merged = serve::read_snapshot(path);
  ASSERT_EQ(merged.tenants.size(), kTenants);
  EXPECT_EQ(merged.records[0].cursor, 8u);   // 4 + 2 + 2
  EXPECT_EQ(merged.records[7].cursor, 6u);   // 4 + 2
  EXPECT_EQ(merged.records[20].cursor, 4u);  // untouched since the base
}

TEST_F(ServeSnapshotTest, TornTrailingSegmentIsDroppedBadCrcIsLoud) {
  Harness h;
  h.open("alpha", 5);
  h.mux.drain();
  h.mux.mark_saved();
  const fs::path path = dir_ / "torn.msrvss";
  serve::write_snapshot_base(path, h.base_segment());
  h.feed(*h.table.find("alpha"), 2);
  h.mux.drain();
  serve::append_snapshot_delta(path, h.dirty_delta());

  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  const auto write_variant = [&](const std::string& name, const std::string& content) {
    const fs::path variant = dir_ / name;
    std::ofstream out(variant, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    return variant;
  };

  // Chop the delta mid-payload: a crash mid-append. The reader falls back
  // to the base — the previous save, a valid quiescent point.
  const ServiceSnapshot fallback =
      serve::read_snapshot(write_variant("chopped", bytes.substr(0, bytes.size() - 5)));
  ASSERT_EQ(fallback.tenants.size(), 1u);
  EXPECT_EQ(fallback.records[0].cursor, 5u);

  // A COMPLETE segment whose CRC lies is corruption, never dropped.
  std::string corrupt = bytes;
  corrupt[bytes.size() - 3] ^= 0x40;  // inside the final delta's payload
  EXPECT_THROW(serve::read_snapshot(write_variant("bad-crc", corrupt)), trace::TraceError);

  // A chain whose first complete segment is a delta has no quiescent point.
  const std::string headerless = bytes.substr(0, 12);  // magic + version only
  EXPECT_THROW(serve::read_snapshot(write_variant("no-segment", headerless)),
               trace::TraceError);
}

TEST_F(ServeSnapshotTest, MonolithicV1FilesStillReadable) {
  Harness h;
  h.open("legacy", 7);
  h.mux.drain();
  ServiceSnapshot snapshot;
  for (const auto& tenant : h.table.entries()) snapshot.tenants.push_back(tenant->spec);
  snapshot.records = h.mux.checkpoint();
  const fs::path path = dir_ / "legacy.msrvss";
  serve::write_snapshot(path, snapshot);  // the v1 writer

  const ServiceSnapshot back = serve::read_snapshot(path);
  ASSERT_EQ(back.tenants.size(), 1u);
  EXPECT_EQ(back.tenants[0].tenant, "legacy");
  EXPECT_EQ(back.records[0].cursor, 7u);
  const SnapshotFileInfo info = serve::inspect_snapshot(path);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.segments, 1u);
  EXPECT_EQ(info.base_bytes, fs::file_size(path));
  EXPECT_EQ(info.delta_bytes, 0u);
}

TEST_F(ServeSnapshotTest, InspectReportsChainShape) {
  Harness h;
  h.open("alpha", 4);
  h.mux.drain();
  h.mux.mark_saved();
  const fs::path path = dir_ / "shape.msrvss";
  const std::uint64_t base_bytes = serve::write_snapshot_base(path, h.base_segment());
  std::uint64_t delta_bytes = 0;
  for (int saves = 0; saves < 3; ++saves) {
    h.feed(*h.table.find("alpha"), 1);
    h.mux.drain();
    delta_bytes += serve::append_snapshot_delta(path, h.dirty_delta());
    h.mux.mark_saved();
  }
  const SnapshotFileInfo info = serve::inspect_snapshot(path);
  EXPECT_EQ(info.version, serve::kSnapshotVersionV2);
  EXPECT_EQ(info.segments, 4u);
  EXPECT_EQ(info.base_bytes, base_bytes);
  EXPECT_EQ(info.delta_bytes, delta_bytes);

  // A fresh base (compaction) resets the chain.
  const std::uint64_t compacted = serve::write_snapshot_base(path, h.base_segment());
  const SnapshotFileInfo after = serve::inspect_snapshot(path);
  EXPECT_EQ(after.segments, 1u);
  EXPECT_EQ(after.base_bytes, compacted);
  EXPECT_EQ(after.delta_bytes, 0u);

  // Appending to a missing or non-MSRVSS2 file fails loudly.
  EXPECT_THROW(serve::append_snapshot_delta(dir_ / "missing.msrvss", h.dirty_delta()),
               trace::TraceError);
}

// ---------------------------------------------------------------------------
// Torture: the crash-consistency contract, enumerated rather than sampled.
// `mobsrv_trace chaos` runs the same sweeps against arbitrary chains in CI;
// these in-process versions pin the invariants on a known chain so a
// regression is caught in `ctest`, not only in the fuzz job.

/// A base + two deltas, returning the raw chain bytes and the byte offset of
/// every complete-segment boundary (positions a crashed writer could have
/// legitimately left the file at).
struct TortureChain {
  std::string bytes;
  std::vector<std::uint64_t> boundaries;
  std::vector<std::string> prefix_states;  // canonical encoding per boundary
};

TortureChain build_torture_chain(Harness& h, const fs::path& path) {
  TortureChain chain;
  h.open("alpha", 5);
  h.open("beta", 3);
  h.mux.drain();
  h.mux.mark_saved();
  serve::write_snapshot_base(path, h.base_segment());
  chain.boundaries.push_back(fs::file_size(path));
  for (int saves = 0; saves < 2; ++saves) {
    h.feed(*h.table.find("alpha"), 2);
    h.mux.drain();
    serve::append_snapshot_delta(path, h.dirty_delta());
    h.mux.mark_saved();
    chain.boundaries.push_back(fs::file_size(path));
  }
  std::ifstream in(path, std::ios::binary);
  chain.bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  for (const std::uint64_t boundary : chain.boundaries)
    chain.prefix_states.push_back(serve::encode_snapshot(
        serve::read_snapshot_bytes(chain.bytes.substr(0, boundary), "prefix")));
  return chain;
}

TEST_F(ServeSnapshotTest, TruncationAtEveryByteOffsetLoadsThePrefixOrFailsLoudly) {
  Harness h;
  const TortureChain chain = build_torture_chain(h, dir_ / "sweep.msrvss");
  ASSERT_EQ(chain.boundaries.back(), chain.bytes.size());

  for (std::size_t len = 0; len <= chain.bytes.size(); ++len) {
    // The longest complete prefix a crash at `len` preserves, if any.
    int prefix = -1;
    for (std::size_t b = 0; b < chain.boundaries.size(); ++b)
      if (chain.boundaries[b] <= len) prefix = static_cast<int>(b);
    const std::string cut = chain.bytes.substr(0, len);
    if (prefix < 0) {
      // No complete segment survives: the reader must refuse, loudly.
      EXPECT_THROW((void)serve::read_snapshot_bytes(cut, "cut"), trace::TraceError)
          << "truncation to " << len << " bytes was accepted";
      continue;
    }
    // A torn tail is a crash mid-append: silently dropped, and the result
    // is bit-identical to the last completed save.
    std::string state;
    ASSERT_NO_THROW(state = serve::encode_snapshot(serve::read_snapshot_bytes(cut, "cut")))
        << "truncation to " << len << " bytes failed loudly past a complete segment";
    EXPECT_EQ(state, chain.prefix_states[static_cast<std::size_t>(prefix)])
        << "truncation to " << len << " bytes loaded a state that is not the longest prefix";
  }
}

TEST_F(ServeSnapshotTest, BitFlipsNeverLoadAStateOutsideTheChain) {
  Harness h;
  const TortureChain chain = build_torture_chain(h, dir_ / "flips.msrvss");

  // Flipping a size field can legitimately tear the tail (the reader sees a
  // truncated chain), so the contract is: every single-bit flip either fails
  // with TraceError or loads to SOME complete-prefix state — never a novel
  // state, never a foreign exception. One bit per byte keeps the sweep
  // byte-granular without exploding to 8x runtime; the rotating bit index
  // still exercises every bit position.
  for (std::size_t offset = 0; offset < chain.bytes.size(); ++offset) {
    std::string mutated = chain.bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ (1u << (offset % 8)));
    try {
      const std::string state =
          serve::encode_snapshot(serve::read_snapshot_bytes(mutated, "flip"));
      EXPECT_NE(std::find(chain.prefix_states.begin(), chain.prefix_states.end(), state),
                chain.prefix_states.end())
          << "bit flip at byte " << offset << " loaded a state outside the chain";
    } catch (const trace::TraceError&) {
      // Loud rejection is the expected outcome for most flips.
    }
    // Any other exception type escapes and fails the test — that is the point.
  }
}

}  // namespace
}  // namespace mobsrv
