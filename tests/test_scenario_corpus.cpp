// Sweep over the committed scenarios/ corpus: every file parses, validates
// and materialises; every key in every file is load-bearing (injecting an
// unknown key anywhere must fail); the files are byte-identical to
// canonical_text(starter_corpus()); and every generator kind reproduces the
// compiled-in corpus instance bit for bit (the parity guarantee that makes
// scenario files a drop-in replacement for C++ generator calls).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>

#include "io/json.hpp"
#include "scenario/scenario.hpp"
#include "trace/corpus.hpp"

#ifndef MOBSRV_SCENARIOS_DIR
#error "MOBSRV_SCENARIOS_DIR must point at the committed scenarios/ directory"
#endif

namespace mobsrv::scenario {
namespace {

namespace fs = std::filesystem;

fs::path corpus_dir() { return fs::path(MOBSRV_SCENARIOS_DIR); }

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

/// Counts JSON objects in \p value (document order, root first).
std::size_t count_objects(const io::Json& value) {
  std::size_t n = 0;
  if (value.is_object()) {
    ++n;
    for (const io::Json::Member& member : value.as_object()) n += count_objects(member.second);
  } else if (value.is_array()) {
    for (const io::Json& element : value.as_array()) n += count_objects(element);
  }
  return n;
}

/// Injects an unknown member into the \p target-th object (document order).
/// Returns true once injected.
bool inject_unknown(io::Json& value, std::size_t& target) {
  if (value.is_object()) {
    if (target == 0) {
      value.set("__unknown_member__", io::Json(1));
      return true;
    }
    --target;
    for (io::Json::Member& member : value.as_object())
      if (inject_unknown(member.second, target)) return true;
  } else if (value.is_array()) {
    for (io::Json& element : value.as_array())
      if (inject_unknown(element, target)) return true;
  }
  return false;
}

TEST(ScenarioCorpus, FilesMatchStarterCorpusByteForByte) {
  const std::vector<fs::path> files = list_scenario_files(corpus_dir());
  std::set<std::string> on_disk;
  for (const fs::path& path : files) on_disk.insert(path.stem().string());

  std::set<std::string> expected;
  for (const Scenario& sc : starter_corpus()) {
    expected.insert(sc.name);
    const fs::path path = corpus_dir() / (sc.name + ".json");
    EXPECT_EQ(read_file(path), canonical_text(sc))
        << path << " is out of sync with starter_corpus() — regenerate it from code";
  }
  EXPECT_EQ(on_disk, expected);
}

TEST(ScenarioCorpus, EveryFileParsesValidatesAndMaterializes) {
  for (const fs::path& path : list_scenario_files(corpus_dir())) {
    SCOPED_TRACE(path.string());
    const Scenario sc = load(path);
    EXPECT_EQ(sc.name, path.stem().string());
    const trace::TraceFile file = materialize(sc, corpus_dir());
    EXPECT_EQ(file.meta.name, sc.name);
    EXPECT_EQ(file.meta.source, "scenario");
    EXPECT_GT(file.instance.horizon(), 0u);
  }
}

TEST(ScenarioCorpus, EveryFieldInEveryFileIsRecognized) {
  // Injecting one unknown key into *any* object of *any* committed file
  // must fail validation — proof that every existing key sits inside an
  // allowlist and none is silently ignored.
  for (const fs::path& path : list_scenario_files(corpus_dir())) {
    const io::Json doc = io::Json::parse(read_file(path));
    const std::size_t objects = count_objects(doc);
    ASSERT_GT(objects, 0u) << path;
    for (std::size_t i = 0; i < objects; ++i) {
      io::Json mutated = doc;
      std::size_t target = i;
      ASSERT_TRUE(inject_unknown(mutated, target)) << path;
      EXPECT_THROW((void)from_json(mutated, path.string()), ScenarioError)
          << path << ": unknown key in object #" << i << " was not rejected";
    }
  }
}

TEST(ScenarioCorpus, GeneratorParityWithCompiledCorpus) {
  // The 12 compiled-in generators, by their corpus scenario names. The
  // starter corpus pins exactly the make_corpus_trace(scale = 1) parameters,
  // so materialising the scenario must reproduce the corpus instance bit for
  // bit — for several seeds, since the RNG stream is keyed by (name, seed).
  const std::set<std::string> generators = {
      "theorem1",         "theorem2",     "theorem3", "theorem8-moving-client",
      "drifting-hotspot", "drifting-hotspot-1d",      "commute",
      "bursts",           "uniform-noise", "random-waypoint",
      "gauss-markov",     "zigzag",
  };
  std::size_t covered = 0;
  for (const Scenario& sc : starter_corpus()) {
    if (generators.find(sc.name) == generators.end()) continue;
    ++covered;
    for (const std::uint64_t seed : {std::uint64_t{3}, std::uint64_t{11}}) {
      SCOPED_TRACE(sc.name + " @ seed " + std::to_string(seed));
      Scenario seeded = sc;
      seeded.seed = seed;
      trace::TraceFile got = materialize(seeded);
      const trace::TraceFile want = trace::make_corpus_trace(sc.name, seed, 1.0);
      EXPECT_EQ(got.meta.seed, want.meta.seed);
      // Only the provenance tag may differ ("scenario" vs "corpus"); align
      // it so identical() compares everything else — instance, adversary
      // solution, moving-client trajectories.
      got.meta = want.meta;
      EXPECT_TRUE(trace::identical(got, want));
    }
  }
  EXPECT_EQ(covered, generators.size()) << "starter corpus lost a generator scenario";
}

TEST(ScenarioCorpus, CommittedCsvDataRoundTrips) {
  // The CSV-backed scenarios exercise the PR 2 importers through the
  // scenario layer; their data files live inside the corpus directory.
  const Scenario demand = load(corpus_dir() / "demand-csv.json");
  const trace::TraceFile demand_file = materialize(demand, corpus_dir());
  EXPECT_GT(demand_file.instance.horizon(), 0u);
  EXPECT_FALSE(demand_file.moving_client.has_value());

  const Scenario waypoints = load(corpus_dir() / "waypoints-csv.json");
  const trace::TraceFile waypoints_file = materialize(waypoints, corpus_dir());
  ASSERT_TRUE(waypoints_file.moving_client.has_value());
  EXPECT_GE(waypoints_file.moving_client->agents.size(), 2u);
}

}  // namespace
}  // namespace mobsrv::scenario
