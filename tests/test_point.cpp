// Unit tests for geometry/point.hpp: construction, arithmetic, norms,
// distances, move_toward — the primitive every algorithm builds on.
#include "geometry/point.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mobsrv::geo {
namespace {

TEST(Point, DefaultConstructedIsEmpty) {
  const Point p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.dim(), 0);
}

TEST(Point, ZeroHasAllZeroCoordinates) {
  const Point p = Point::zero(3);
  EXPECT_EQ(p.dim(), 3);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(p[i], 0.0);
}

TEST(Point, InitializerListSetsCoordinates) {
  const Point p{1.0, -2.5, 3.0};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_EQ(p[0], 1.0);
  EXPECT_EQ(p[1], -2.5);
  EXPECT_EQ(p[2], 3.0);
}

TEST(Point, DimensionOutOfRangeThrows) {
  EXPECT_THROW(Point(0), ContractViolation);
  EXPECT_THROW(Point(Point::kMaxDim + 1), ContractViolation);
  EXPECT_NO_THROW(Point(Point::kMaxDim));
}

TEST(Point, UnitVector) {
  const Point e1 = Point::unit(3, 1);
  EXPECT_EQ(e1[0], 0.0);
  EXPECT_EQ(e1[1], 1.0);
  EXPECT_EQ(e1[2], 0.0);
  EXPECT_DOUBLE_EQ(e1.norm(), 1.0);
  EXPECT_THROW((void)Point::unit(2, 2), ContractViolation);
}

TEST(Point, OnAxisEmbedsScalar) {
  const Point p = Point::on_axis(4, -7.5, 2);
  EXPECT_EQ(p[2], -7.5);
  EXPECT_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p.norm(), 7.5);
}

TEST(Point, AdditionAndSubtraction) {
  const Point a{1.0, 2.0};
  const Point b{-3.0, 5.0};
  const Point sum = a + b;
  EXPECT_EQ(sum[0], -2.0);
  EXPECT_EQ(sum[1], 7.0);
  const Point diff = a - b;
  EXPECT_EQ(diff[0], 4.0);
  EXPECT_EQ(diff[1], -3.0);
}

TEST(Point, ScalarMultiplicationBothSides) {
  const Point a{1.0, -2.0};
  EXPECT_EQ((a * 3.0)[1], -6.0);
  EXPECT_EQ((3.0 * a)[0], 3.0);
  EXPECT_EQ((a / 2.0)[0], 0.5);
  EXPECT_EQ((-a)[1], 2.0);
}

TEST(Point, CompoundAssignment) {
  Point a{1.0, 1.0};
  a += Point{1.0, 2.0};
  a -= Point{0.5, 0.0};
  a *= 2.0;
  a /= 4.0;
  EXPECT_DOUBLE_EQ(a[0], 0.75);
  EXPECT_DOUBLE_EQ(a[1], 1.5);
}

TEST(Point, EqualityRequiresSameDimension) {
  EXPECT_NE(Point({1.0}), Point({1.0, 0.0}));
  EXPECT_EQ(Point({1.0, 2.0}), Point({1.0, 2.0}));
  EXPECT_NE(Point({1.0, 2.0}), Point({1.0, 2.1}));
}

TEST(Point, DotProduct) {
  EXPECT_DOUBLE_EQ(Point({1.0, 2.0, 3.0}).dot(Point{4.0, -5.0, 6.0}), 12.0);
}

TEST(Point, NormAndNorm2) {
  const Point p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(p.norm(), 5.0);
}

TEST(Point, NormalizedHasUnitLength) {
  const Point p = Point{3.0, 4.0}.normalized();
  EXPECT_DOUBLE_EQ(p.norm(), 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.6);
}

TEST(Point, NormalizedZeroStaysZero) {
  const Point z = Point::zero(2).normalized();
  EXPECT_EQ(z, Point::zero(2));
}

TEST(Point, DistanceIsSymmetricAndPositive) {
  const Point a{0.0, 0.0};
  const Point b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_DOUBLE_EQ(distance(a, b), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(distance2(a, b), 2.0);
  EXPECT_EQ(distance(a, a), 0.0);
}

TEST(Point, LerpEndpointsAndMidpoint) {
  const Point a{0.0};
  const Point b{10.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Point{5.0});
}

TEST(MoveToward, ReachesTargetWhenStepSuffices) {
  const Point from{0.0, 0.0};
  const Point to{1.0, 0.0};
  EXPECT_EQ(move_toward(from, to, 2.0), to);
  EXPECT_EQ(move_toward(from, to, 1.0), to);
}

TEST(MoveToward, NeverOvershoots) {
  const Point from{0.0, 0.0};
  const Point to{10.0, 0.0};
  const Point result = move_toward(from, to, 3.0);
  EXPECT_DOUBLE_EQ(result[0], 3.0);
  EXPECT_DOUBLE_EQ(result[1], 0.0);
}

TEST(MoveToward, ZeroStepStaysPut) {
  const Point from{1.0, 2.0};
  EXPECT_EQ(move_toward(from, Point{5.0, 5.0}, 0.0), from);
}

TEST(MoveToward, NegativeStepThrows) {
  EXPECT_THROW((void)move_toward(Point{0.0}, Point{1.0}, -0.1), ContractViolation);
}

TEST(MoveToward, CoincidentPointsStay) {
  const Point p{1.0, 1.0};
  EXPECT_EQ(move_toward(p, p, 5.0), p);
}

TEST(MoveToward, StepExactlyDistance) {
  const Point from{0.0};
  const Point to{4.0};
  EXPECT_EQ(move_toward(from, to, 4.0), to);
}

TEST(Point, StreamFormat) {
  std::ostringstream os;
  os << Point{1.5, -2.0};
  EXPECT_EQ(os.str(), "(1.5, -2)");
  EXPECT_EQ(Point({3.0}).to_string(), "(3)");
}

// Property sweep: move_toward moves exactly min(step, distance) and lands on
// the segment, in every dimension.
class MoveTowardProperty : public ::testing::TestWithParam<int> {};

TEST_P(MoveTowardProperty, DistanceContract) {
  const int dim = GetParam();
  // Deterministic pseudo-random-ish sweep without an RNG dependency.
  for (int k = 1; k <= 50; ++k) {
    Point from(dim), to(dim);
    for (int d = 0; d < dim; ++d) {
      from[d] = std::sin(0.7 * k + d);
      to[d] = 3.0 * std::cos(1.3 * k - d);
    }
    const double dist = distance(from, to);
    for (const double step : {0.0, 0.1, 0.5 * dist, dist, 2.0 * dist}) {
      const Point got = move_toward(from, to, step);
      EXPECT_NEAR(distance(from, got), std::min(step, dist), 1e-9);
      // Collinearity: distance(from,got) + distance(got,to) == distance(from,to).
      EXPECT_NEAR(distance(from, got) + distance(got, to), dist, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, MoveTowardProperty, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace mobsrv::geo
