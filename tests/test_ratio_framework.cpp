// Unit tests for core/ratio.hpp and core/shootout.hpp: the measurement
// machinery — oracle selection, parallel determinism, and the shared-
// instance shootout.
#include "core/ratio.hpp"

#include <gtest/gtest.h>

#include "adversary/lower_bounds.hpp"
#include "adversary/workloads.hpp"
#include "algorithms/registry.hpp"
#include "core/shootout.hpp"

namespace mobsrv::core {
namespace {

PreparedSample sample_theorem1(std::size_t, stats::Rng& rng) {
  adv::Theorem1Params p;
  p.horizon = 100;
  adv::AdversarialInstance a = adv::make_theorem1(p, rng);
  PreparedSample s{std::move(a.instance), a.adversary_cost, std::move(a.adversary_positions)};
  return s;
}

PreparedSample sample_hotspot_1d(std::size_t, stats::Rng& rng) {
  adv::DriftingHotspotParams p;
  p.horizon = 60;
  p.dim = 1;
  return PreparedSample{adv::make_drifting_hotspot(p, rng), 0.0, {}};
}

PreparedSample sample_hotspot_2d(std::size_t, stats::Rng& rng) {
  adv::DriftingHotspotParams p;
  p.horizon = 60;
  p.dim = 2;
  return PreparedSample{adv::make_drifting_hotspot(p, rng), 0.0, {}};
}

AlgorithmFn mtc_factory() {
  return [](std::uint64_t) { return alg::make_algorithm("MtC"); };
}

TEST(RunTrial, AdversaryOracleUsesAdversaryCost) {
  stats::Rng rng(1);
  const PreparedSample s = sample_theorem1(0, rng);
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  RatioOptions opt;
  opt.oracle = OptOracle::kAdversaryCost;
  const TrialResult r = run_trial(s, *algo, opt);
  EXPECT_EQ(r.proxy_cost, s.adversary_cost);
  EXPECT_GT(r.online_cost, 0.0);
  EXPECT_GT(r.ratio(), 0.0);
}

TEST(RunTrial, AdversaryOracleRequiresAdversary) {
  stats::Rng rng(2);
  const PreparedSample s = sample_hotspot_1d(0, rng);
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  RatioOptions opt;
  opt.oracle = OptOracle::kAdversaryCost;
  EXPECT_THROW((void)run_trial(s, *algo, opt), ContractViolation);
}

TEST(RunTrial, GridDpOracleNeeds1D) {
  stats::Rng rng(3);
  const PreparedSample s2d = sample_hotspot_2d(0, rng);
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  RatioOptions opt;
  opt.oracle = OptOracle::kGridDp1D;
  EXPECT_THROW((void)run_trial(s2d, *algo, opt), ContractViolation);
  const PreparedSample s1d = sample_hotspot_1d(0, rng);
  const TrialResult r = run_trial(s1d, *algo, opt);
  EXPECT_GT(r.proxy_cost, 0.0);
  EXPECT_GT(r.opt_lower, 0.0);
  EXPECT_LE(r.opt_lower, r.proxy_cost + 1e-9);
}

TEST(RunTrial, ConvexOracleWorksInAnyDim) {
  stats::Rng rng(4);
  const PreparedSample s = sample_hotspot_2d(0, rng);
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  RatioOptions opt;
  opt.oracle = OptOracle::kConvexDescent;
  const TrialResult r = run_trial(s, *algo, opt);
  EXPECT_GT(r.proxy_cost, 0.0);
}

TEST(RunTrial, BestAvailableIsTightest) {
  stats::Rng rng(5);
  const PreparedSample s = sample_theorem1(0, rng);  // 1-D with adversary
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  RatioOptions adversary_only, best;
  adversary_only.oracle = OptOracle::kAdversaryCost;
  best.oracle = OptOracle::kBestAvailable;
  const double proxy_adv = run_trial(s, *algo, adversary_only).proxy_cost;
  const double proxy_best = run_trial(s, *algo, best).proxy_cost;
  EXPECT_LE(proxy_best, proxy_adv + 1e-9);
}

TEST(RunTrial, SpeedFactorAugmentsTheOnlineAlgorithm) {
  stats::Rng rng(6);
  const PreparedSample s = sample_theorem1(0, rng);
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  RatioOptions slow, fast;
  slow.oracle = fast.oracle = OptOracle::kAdversaryCost;
  slow.speed_factor = 1.0;
  fast.speed_factor = 2.0;
  // On the Theorem-1 chase sequence, a faster server can only do better.
  EXPECT_LE(run_trial(s, *algo, fast).online_cost,
            run_trial(s, *algo, slow).online_cost + 1e-9);
}

TEST(EstimateRatio, AggregatesTrials) {
  par::ThreadPool pool(2);
  RatioOptions opt;
  opt.trials = 6;
  opt.oracle = OptOracle::kAdversaryCost;
  opt.seed_key = stats::hash_name("agg-test");
  const RatioEstimate est = estimate_ratio(pool, mtc_factory(), sample_theorem1, opt);
  EXPECT_EQ(est.ratio.count(), 6u);
  EXPECT_EQ(est.online_cost.count(), 6u);
  EXPECT_GT(est.ratio.mean(), 0.0);
}

TEST(EstimateRatio, DeterministicAcrossThreadCounts) {
  RatioOptions opt;
  opt.trials = 8;
  opt.oracle = OptOracle::kAdversaryCost;
  opt.seed_key = stats::hash_name("det-test");
  par::ThreadPool one(1), four(4);
  const RatioEstimate a = estimate_ratio(one, mtc_factory(), sample_theorem1, opt);
  const RatioEstimate b = estimate_ratio(four, mtc_factory(), sample_theorem1, opt);
  EXPECT_EQ(a.ratio.mean(), b.ratio.mean());
  EXPECT_EQ(a.ratio.min(), b.ratio.min());
  EXPECT_EQ(a.ratio.max(), b.ratio.max());
}

TEST(EstimateRatio, SeedKeyChangesResults) {
  // Note: the Theorem-1 generator would NOT work here — its only randomness
  // is the coin direction and MtC's cost is mirror-symmetric, so every seed
  // gives the identical ratio. Use a workload with real variation instead.
  par::ThreadPool pool(2);
  RatioOptions a, b;
  a.trials = b.trials = 4;
  a.oracle = b.oracle = OptOracle::kGridDp1D;
  a.seed_key = 1;
  b.seed_key = 2;
  const double ra = estimate_ratio(pool, mtc_factory(), sample_hotspot_1d, a).ratio.mean();
  const double rb = estimate_ratio(pool, mtc_factory(), sample_hotspot_1d, b).ratio.mean();
  EXPECT_NE(ra, rb);
}

TEST(EstimateRatio, RatioVsLowerTracksCertifiedBound) {
  par::ThreadPool pool(2);
  RatioOptions opt;
  opt.trials = 4;
  opt.oracle = OptOracle::kGridDp1D;
  opt.seed_key = stats::hash_name("lb-test");
  const RatioEstimate est = estimate_ratio(pool, mtc_factory(), sample_hotspot_1d, opt);
  EXPECT_EQ(est.ratio_vs_lower.count(), 4u);
  // Ratio against the certified lower bound is an upper estimate.
  EXPECT_GE(est.ratio_vs_lower.mean(), est.ratio.mean() - 1e-9);
}

TEST(Shootout, SharedInstancesAndWins) {
  par::ThreadPool pool(2);
  RatioOptions opt;
  opt.trials = 4;
  opt.oracle = OptOracle::kConvexDescent;
  opt.seed_key = stats::hash_name("shootout-test");
  const std::vector<std::string> names{"MtC", "Lazy", "GreedyCenter"};
  const auto rows = shootout(pool, names, sample_hotspot_2d, opt);
  ASSERT_EQ(rows.size(), 3u);
  int total_wins = 0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.cost.count(), 4u);
    total_wins += row.wins;
  }
  EXPECT_EQ(total_wins, 4);  // exactly one winner per trial
}

TEST(Shootout, EmptyNamesRejected) {
  par::ThreadPool pool(1);
  RatioOptions opt;
  EXPECT_THROW((void)shootout(pool, {}, sample_hotspot_2d, opt), ContractViolation);
}

}  // namespace
}  // namespace mobsrv::core
