// Property tests for core/audit.hpp: empirical verification of the paper's
// proof machinery — Lemma 5's reduction, Lemma 6's geometric inequality
// (the content of Figures 1 and 2), and the Section 4 potential-function
// step inequality. Each samples thousands of random configurations; a
// single violation fails the build.
#include "core/audit.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mobsrv::core {
namespace {

// ---------------------------------------------------------------- Lemma 6
// The literal statement admits ~1% violations for obtuse configurations
// (see the reproduction finding in core/audit.hpp); the property asserted
// build-breakingly is the amended bound with kLemma6ObtuseSlack.
class Lemma6Property : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Lemma6Property, AmendedBoundHoldsOnRandomConfigurations) {
  const auto [dim, delta] = GetParam();
  stats::Rng rng({stats::hash_name("lemma6"), static_cast<std::uint64_t>(dim),
                  static_cast<std::uint64_t>(delta * 1000)});
  int literal_violations = 0;
  for (int rep = 0; rep < 3000; ++rep) {
    const Lemma6Sample s = sample_lemma6(dim, delta, rng);
    ASSERT_TRUE(s.holds_amended(1e-7))
        << "a1=" << s.a1 << " a2=" << s.a2 << " s2=" << s.s2 << " h=" << s.h << " q=" << s.q
        << " bound=" << s.bound;
    if (!s.holds(1e-7)) ++literal_violations;
  }
  // Literal violations are possible but must be rare (obtuse + a1<<a2 +
  // premise-boundary all at once).
  EXPECT_LE(literal_violations, 5);
}

INSTANTIATE_TEST_SUITE_P(DimsAndDeltas, Lemma6Property,
                         ::testing::Combine(::testing::Values(1, 2, 3, 8),
                                            ::testing::Values(0.1, 0.25, 0.5, 1.0)));

// Regression test for the reproduction finding: the exact counterexample to
// the literal statement, and the right-angle configuration (the proof's
// reduction) that satisfies it.
TEST(Lemma6, ObtuseBoundaryCounterexampleToLiteralStatement) {
  const double delta = 0.5;
  const double a1 = 0.001, a2 = 10.0;
  const double cap = std::sqrt(delta) / (1.0 + delta / 2.0);
  const double s2 = cap * a2;  // premise holds with equality
  const double bound = (1.0 + delta / 2.0) / (1.0 + delta) * a1;

  // P'Opt at 124.4° around c (the minimising angle): literal bound FAILS.
  const double theta = 2.172;
  const geo::Point p_alg{0.0, 0.0};
  const geo::Point p_alg_next{a1, 0.0};
  const geo::Point c{a1 + a2, 0.0};
  const geo::Point p_opt_next{a1 + a2 + s2 * std::cos(theta), s2 * std::sin(theta)};
  const double h = geo::distance(p_opt_next, p_alg);
  const double q = geo::distance(p_opt_next, p_alg_next);
  EXPECT_LT(h - q, bound);                                  // literal statement violated...
  EXPECT_GT(h - q, bound * (1.0 - kLemma6ObtuseSlack));     // ...but only by ~1%

  // The proof's right-angle reduction satisfies the bound.
  const double h90 = std::hypot(a1 + a2, s2);
  const double q90 = std::hypot(a2, s2);
  EXPECT_GE(h90 - q90, bound);
}

TEST(Lemma6, PremiseBoundaryIsTight) {
  // At the premise boundary s2 = √δ/(1+δ/2)·a2 with the right-angle
  // geometry of Figure 2, h − q equals the bound (up to rounding): the
  // lemma's inequality is tight there, confirming we encode the same
  // geometry the paper draws.
  const double delta = 0.5;
  const double a1 = 1.0, a2 = 2.0;
  const double s2 = std::sqrt(delta) / (1.0 + delta / 2.0) * a2;
  // Place PAlg = 0, P'Alg = a1, c = a1 + a2 on the x-axis; P'Opt
  // perpendicular above c (the maximising configuration in the proof).
  const geo::Point p_alg{0.0, 0.0};
  const geo::Point p_alg_next{a1, 0.0};
  const geo::Point c{a1 + a2, 0.0};
  const geo::Point p_opt_next{a1 + a2, s2};
  const double h = geo::distance(p_opt_next, p_alg);
  const double q = geo::distance(p_opt_next, p_alg_next);
  const double bound = (1.0 + delta / 2.0) / (1.0 + delta) * a1;
  EXPECT_GE(h - q, bound - 1e-9);
  // Tightness within a few percent (the proof's algebra is not exactly
  // achieved by this ε but close).
  EXPECT_LT(h - q, bound * 1.30);
}

TEST(Lemma6, SampleRespectsPremise) {
  stats::Rng rng(1);
  for (int rep = 0; rep < 200; ++rep) {
    const Lemma6Sample s = sample_lemma6(2, 0.5, rng);
    EXPECT_LE(s.s2, std::sqrt(0.5) / 1.25 * s.a2 + 1e-12);
    EXPECT_GE(s.a1, 0.0);
    EXPECT_GE(s.a2, 0.0);
  }
}

// ---------------------------------------------------------------- Lemma 5
class Lemma5Property : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Lemma5Property, MedianOptimalityAndReduction) {
  const auto [dim, r] = GetParam();
  stats::Rng rng({stats::hash_name("lemma5"), static_cast<std::uint64_t>(dim),
                  static_cast<std::uint64_t>(r)});
  for (int rep = 0; rep < 500; ++rep) {
    const Lemma5Sample s = sample_lemma5(dim, static_cast<std::size_t>(r), 10.0, rng);
    ASSERT_TRUE(s.median_optimal()) << "center worse than OPT position: "
                                    << s.service_at_center << " > " << s.service_at_opt;
    ASSERT_TRUE(s.reduction_holds())
        << "r·d(o,c) = " << s.simplified_opt << " > 4·" << s.service_at_opt;
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndSizes, Lemma5Property,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3, 5, 8)));

// ------------------------------------------------------ Potential function
TEST(Potential, ContinuousAtRegimeBoundary) {
  for (const std::size_t r : {2u, 8u}) {
    PotentialConfig cfg;
    cfg.requests = r;
    cfg.move_cost_weight = 4.0;
    cfg.delta = 0.5;
    const double threshold =
        cfg.delta * cfg.move_cost_weight * cfg.max_step / (4.0 * static_cast<double>(r));
    const double below = potential(cfg, threshold * (1.0 - 1e-9));
    const double above = potential(cfg, threshold * (1.0 + 1e-9));
    EXPECT_NEAR(below, above, 1e-6 * (1.0 + below));
  }
}

TEST(Potential, ZeroAtZeroAndMonotone) {
  PotentialConfig cfg;
  EXPECT_EQ(potential(cfg, 0.0), 0.0);
  double prev = 0.0;
  for (double p = 0.01; p < 10.0; p += 0.01) {
    const double phi = potential(cfg, p);
    EXPECT_GE(phi, prev);
    prev = phi;
  }
}

TEST(Potential, CoefficientsDoubleInSmallRRegime) {
  PotentialConfig big_r;  // r > D
  big_r.requests = 8;
  big_r.move_cost_weight = 4.0;
  PotentialConfig small_r = big_r;  // r <= D
  small_r.requests = 2;
  // Far regime: quad coefficient is 8r/(δm) vs 16r/(δm): at equal p and
  // r-ratio 4, φ_big(p)/φ_small(p) = (8·8)/(16·2) = 2.
  const double p = 10.0;
  EXPECT_NEAR(potential(big_r, p) / potential(small_r, p), 2.0, 1e-9);
}

class PotentialStepProperty
    : public ::testing::TestWithParam<std::tuple<int, double, double, int>> {};

TEST_P(PotentialStepProperty, StepInequalityHolds) {
  const auto [dim, delta, d_weight, r] = GetParam();
  PotentialConfig cfg;
  cfg.dim = dim;
  cfg.delta = delta;
  cfg.move_cost_weight = d_weight;
  cfg.requests = static_cast<std::size_t>(r);
  stats::Rng rng({stats::hash_name("potential"), static_cast<std::uint64_t>(dim),
                  static_cast<std::uint64_t>(delta * 1000), static_cast<std::uint64_t>(r),
                  static_cast<std::uint64_t>(d_weight)});
  const double k = audit_bound(delta);
  for (int rep = 0; rep < 2000; ++rep) {
    const PotentialSample s = sample_potential_step(cfg, rng);
    ASSERT_TRUE(s.holds(k, 1e-6))
        << "C_alg=" << s.online_cost << " dphi=" << s.delta_phi() << " C_opt=" << s.opt_cost
        << " K=" << k << " lhs=" << s.lhs();
  }
}

// r > D and r <= D regimes, lines and planes, several δ.
INSTANTIATE_TEST_SUITE_P(Regimes, PotentialStepProperty,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(0.25, 0.5, 1.0),
                                            ::testing::Values(1.0, 4.0),
                                            ::testing::Values(1, 2, 8)));

TEST(AuditBound, MatchesDeltaScaling) {
  EXPECT_NEAR(audit_bound(1.0), 500.0, 1e-9);
  EXPECT_NEAR(audit_bound(0.25), 500.0 / (0.25 * 0.5), 1e-9);
}

}  // namespace
}  // namespace mobsrv::core
