// Tests for the mobsrv_serve wire protocol (serve/frames.hpp): client-frame
// parsing with loud rejection of unknown members/types/versions, tenant
// attribution for error isolation, TenantSpec JSON round-trips, and the
// server frame builders' exact shapes.
#include <gtest/gtest.h>

#include "io/json.hpp"
#include "serve/frames.hpp"

namespace mobsrv {
namespace {

using serve::ClientFrame;
using serve::FrameError;
using serve::FrameType;
using serve::TenantSpec;

ClientFrame parse(const std::string& line) { return serve::parse_client_frame(line); }

/// The error message a line fails with (empty when it parses fine).
std::string error_of(const std::string& line) {
  try {
    (void)parse(line);
    return {};
  } catch (const FrameError& error) {
    return error.what();
  }
}

std::string tenant_of(const std::string& line) {
  try {
    (void)parse(line);
    return {};
  } catch (const FrameError& error) {
    return error.tenant();
  }
}

// ---------------------------------------------------------------------------
// Open frames.
// ---------------------------------------------------------------------------

TEST(ServeFrames, OpenFrameParsesFullSpec) {
  const ClientFrame frame = parse(
      R"({"type":"open","v":1,"tenant":"acme","algorithm":"MtC","seed":7,"dim":2,"k":4,)"
      R"("speed":1.5,"policy":"throw","D":2.0,"m":0.5,"order":"serve-then-move",)"
      R"("starts":[[0,0],[1,0],[0,1],[1,1]]})");
  EXPECT_EQ(frame.type, FrameType::kOpen);
  EXPECT_EQ(frame.tenant, "acme");
  EXPECT_EQ(frame.open.algorithm, "MtC");
  EXPECT_EQ(frame.open.seed, 7u);
  EXPECT_EQ(frame.open.dim, 2);
  EXPECT_EQ(frame.open.fleet_size, 4u);
  EXPECT_EQ(frame.open.speed_factor, 1.5);
  EXPECT_EQ(frame.open.policy, sim::SpeedLimitPolicy::kThrow);
  EXPECT_EQ(frame.open.params.move_cost_weight, 2.0);
  EXPECT_EQ(frame.open.params.max_step, 0.5);
  EXPECT_EQ(frame.open.params.order, sim::ServiceOrder::kServeThenMove);
  ASSERT_EQ(frame.open.starts.size(), 4u);
  EXPECT_EQ(frame.open.starts[3], (geo::Point{1.0, 1.0}));
}

TEST(ServeFrames, OpenFrameDefaultsAreProductionFriendly) {
  const ClientFrame frame =
      parse(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":3})");
  EXPECT_EQ(frame.open.fleet_size, 1u);
  EXPECT_EQ(frame.open.speed_factor, 1.0);
  // A live service clamps by default rather than throwing a tenant out.
  EXPECT_EQ(frame.open.policy, sim::SpeedLimitPolicy::kClamp);
  ASSERT_EQ(frame.open.starts.size(), 1u);
  EXPECT_EQ(frame.open.starts[0], geo::Point::zero(3));
}

TEST(ServeFrames, SharedStartIsReplicatedAcrossTheFleet) {
  const ClientFrame frame = parse(
      R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,"k":3,"start":[2.5]})");
  ASSERT_EQ(frame.open.starts.size(), 3u);
  for (const geo::Point& p : frame.open.starts) EXPECT_EQ(p, geo::Point{2.5});
}

TEST(ServeFrames, OpenFrameRequiresTheProtocolVersion) {
  EXPECT_NE(error_of(R"({"type":"open","tenant":"t","algorithm":"MtC","dim":1})")
                .find("protocol version"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":2,"tenant":"t","algorithm":"MtC","dim":1})")
                .find("not supported"),
            std::string::npos);
}

TEST(ServeFrames, OpenFrameValidationIsLoud) {
  // Every rejected spec names the offending member.
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC"})").find("dim"),
            std::string::npos);
  EXPECT_NE(
      error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":9})").find("dim"),
      std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,"k":0})")
                .find("\"k\""),
            std::string::npos);
  EXPECT_NE(
      error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,"speed":0.5})")
          .find("speed"),
      std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,"m":0})")
                .find("\"m\""),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,"D":0.5})")
                .find("\"D\""),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"","algorithm":"MtC","dim":1})")
                .find("tenant"),
            std::string::npos);
  // starts must match k and dim; start XOR starts.
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,"k":2,)"
                     R"("starts":[[0]]})")
                .find("starts"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":2,)"
                     R"("start":[1]})")
                .find("coordinates"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,)"
                     R"("start":[0],"starts":[[0]]})")
                .find("not both"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,)"
                     R"("policy":"explode"})")
                .find("policy"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Req / close / control frames.
// ---------------------------------------------------------------------------

TEST(ServeFrames, ReqFrameCarriesTheBatch) {
  const ClientFrame frame =
      parse(R"({"type":"req","tenant":"acme","batch":[[1,2],[3,4],[5,6]]})");
  EXPECT_EQ(frame.type, FrameType::kReq);
  EXPECT_EQ(frame.tenant, "acme");
  ASSERT_EQ(frame.batch.size(), 3u);
  EXPECT_EQ(frame.batch.requests[1], (geo::Point{3.0, 4.0}));
}

TEST(ServeFrames, EmptyBatchIsAnIdleStep) {
  const ClientFrame frame = parse(R"({"type":"req","tenant":"acme","batch":[]})");
  EXPECT_TRUE(frame.batch.empty());
}

TEST(ServeFrames, ReqFrameRejectsMixedDimensions) {
  EXPECT_NE(error_of(R"({"type":"req","tenant":"t","batch":[[1],[1,2]]})").find("mixes"),
            std::string::npos);
  EXPECT_EQ(tenant_of(R"({"type":"req","tenant":"t","batch":[[1],[1,2]]})"), "t");
}

TEST(ServeFrames, ControlFramesParse) {
  EXPECT_EQ(parse(R"({"type":"close","tenant":"t"})").type, FrameType::kClose);
  EXPECT_EQ(parse(R"({"type":"stats"})").type, FrameType::kStats);
  EXPECT_EQ(parse(R"({"type":"stats","tenant":"t"})").tenant, "t");
  EXPECT_EQ(parse(R"({"type":"checkpoint"})").type, FrameType::kCheckpoint);
  EXPECT_EQ(parse(R"({"type":"shutdown"})").type, FrameType::kShutdown);
  EXPECT_EQ(parse(R"({"type":"kill"})").type, FrameType::kKill);
  EXPECT_EQ(parse(R"({"type":"metrics"})").type, FrameType::kMetrics);
  EXPECT_EQ(parse(R"({"type":"metrics","v":1})").type, FrameType::kMetrics);
  EXPECT_THROW(parse(R"({"type":"metrics","tenant":"t"})"), serve::FrameError);
}

TEST(ServeFrames, MetricsFrameCarriesRegistryAndTenantRows) {
  obs::Registry registry;
  registry.counter("serve.reqs_total", "frames", "reqs").inc(3);
  core::SessionStats stats;
  stats.tenant = "t1";
  stats.algorithm = "MtC";
  stats.steps = 2;
  stats.horizon = 5;
  serve::TenantObsRow row;
  row.reqs = 3;
  row.outcomes = 2;
  row.busys = 1;
  const io::Json doc =
      io::Json::parse(serve::metrics_frame(registry.to_json(), {stats}, {row}));
  EXPECT_EQ(doc.at("type").as_string(), "metrics");
  EXPECT_EQ(doc.at("v").as_uint64(), serve::kProtocolVersion);
  EXPECT_EQ(doc.at("metrics").as_array().front().at("value").as_uint64(), 3u);
  const io::Json& tenant = doc.at("tenants").as_array().front();
  EXPECT_EQ(tenant.at("tenant").as_string(), "t1");
  EXPECT_EQ(tenant.at("queued").as_uint64(), 3u);  // horizon - steps
  EXPECT_EQ(tenant.at("reqs").as_uint64(), 3u);
  EXPECT_EQ(tenant.at("busys").as_uint64(), 1u);
  EXPECT_EQ(tenant.at("ingest_latency_ns").at("count").as_uint64(), 0u);
}

// ---------------------------------------------------------------------------
// Malformed lines: loud, attributed where possible.
// ---------------------------------------------------------------------------

TEST(ServeFrames, MalformedJsonIsLoudAndUnattributed) {
  EXPECT_NE(error_of("{nope").find("malformed JSON"), std::string::npos);
  EXPECT_EQ(tenant_of("{nope"), "");
  EXPECT_NE(error_of("[1,2]").find("object"), std::string::npos);
  EXPECT_NE(error_of(R"({"tenant":"t"})").find("type"), std::string::npos);
  EXPECT_EQ(tenant_of(R"({"tenant":"t"})"), "t");  // attributable, though
}

TEST(ServeFrames, UnknownTypeAndUnknownMembersAreRejected) {
  EXPECT_NE(error_of(R"({"type":"frobnicate"})").find("unknown frame type"), std::string::npos);
  // A typo'd member must fail loudly, never be silently ignored.
  EXPECT_NE(error_of(R"({"type":"req","tenant":"t","batc":[[1]]})").find("unknown member"),
            std::string::npos);
  EXPECT_EQ(tenant_of(R"({"type":"req","tenant":"t","batc":[[1]]})"), "t");
  EXPECT_NE(error_of(R"({"type":"shutdown","extra":1})").find("unknown member"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// TenantSpec JSON round-trip (the snapshot file depends on it).
// ---------------------------------------------------------------------------

TEST(ServeFrames, TenantSpecRoundTripsThroughJson) {
  TenantSpec spec;
  spec.tenant = "rt";
  spec.algorithm = "MoveToMin";
  spec.seed = 12345;
  spec.dim = 2;
  spec.fleet_size = 3;
  spec.speed_factor = 1.0 + 1.0 / 3.0;  // not exactly representable in decimal
  spec.policy = sim::SpeedLimitPolicy::kThrow;
  spec.params.move_cost_weight = 2.5;
  spec.params.max_step = 0.1;
  spec.params.order = sim::ServiceOrder::kServeThenMove;
  spec.starts = {geo::Point{0.1, 0.2}, geo::Point{-1.0, 2.0}, geo::Point{3.0, -4.5}};

  const TenantSpec back = serve::tenant_spec_from_json(serve::tenant_spec_to_json(spec));
  EXPECT_EQ(back.tenant, spec.tenant);
  EXPECT_EQ(back.algorithm, spec.algorithm);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.dim, spec.dim);
  EXPECT_EQ(back.fleet_size, spec.fleet_size);
  EXPECT_EQ(back.speed_factor, spec.speed_factor);  // exact: round-trip doubles
  EXPECT_EQ(back.policy, spec.policy);
  EXPECT_EQ(back.params.move_cost_weight, spec.params.move_cost_weight);
  EXPECT_EQ(back.params.max_step, spec.params.max_step);
  EXPECT_EQ(back.params.order, spec.params.order);
  EXPECT_EQ(back.starts, spec.starts);
}

TEST(ServeFrames, RateLimitsParseValidateAndRoundTrip) {
  const ClientFrame frame = parse(
      R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,"rate":2.5,"burst":8})");
  EXPECT_EQ(frame.open.rate, 2.5);
  EXPECT_EQ(frame.open.rate_burst, 8.0);

  // Unlimited by default — and a rate-less spec serialises without the
  // members, so v1 snapshot payloads stay byte-identical.
  const ClientFrame bare =
      parse(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1})");
  EXPECT_EQ(bare.open.rate, 0.0);
  EXPECT_EQ(bare.open.rate_burst, 0.0);
  io::Json plain = serve::tenant_spec_to_json(bare.open);
  EXPECT_EQ(plain.find("rate"), nullptr);
  EXPECT_EQ(plain.find("burst"), nullptr);

  TenantSpec spec = frame.open;
  spec.tenant = "t";
  const TenantSpec back = serve::tenant_spec_from_json(serve::tenant_spec_to_json(spec));
  EXPECT_EQ(back.rate, 2.5);
  EXPECT_EQ(back.rate_burst, 8.0);

  // Validation names the offending member.
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,)"
                     R"("rate":-1})")
                .find("rate"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,)"
                     R"("burst":4})")
                .find("burst"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"type":"open","v":1,"tenant":"t","algorithm":"MtC","dim":1,)"
                     R"("rate":1,"burst":0.5})")
                .find("burst"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Server frame builders.
// ---------------------------------------------------------------------------

TEST(ServeFrames, ServerFramesAreOneJsonObjectWithAType) {
  core::SessionStats stats;
  stats.tenant = "t";
  stats.algorithm = "MtC";
  stats.steps = 3;
  stats.move_cost = 1.25;
  stats.service_cost = 0.5;
  stats.total_cost = 1.75;
  stats.positions = {geo::Point{1.0, 2.0}};
  core::MuxTotals totals;
  totals.sessions = 1;

  for (const std::string& line :
       {serve::outcome_frame("t", 2, 0.25, 0.5, stats, false),
        serve::busy_frame("t", 7, 64, 64), serve::error_frame(3, "boom", "t", true),
        serve::closed_frame(stats), serve::stats_frame({stats}, totals),
        serve::checkpointed_frame("/tmp/s.msrvss", 2, 100, "base", 512, 1),
        serve::bye_frame("eof", totals)}) {
    const io::Json doc = io::Json::parse(line);
    ASSERT_TRUE(doc.is_object()) << line;
    EXPECT_NE(doc.find("type"), nullptr) << line;
    EXPECT_EQ(line.find('\n'), std::string::npos) << "frames are single lines";
  }

  const io::Json outcome = io::Json::parse(serve::outcome_frame("t", 2, 0.25, 0.5, stats, false));
  EXPECT_EQ(outcome.at("t").as_uint64(), 2u);
  EXPECT_EQ(outcome.at("move").as_double(), 0.25);
  EXPECT_EQ(outcome.at("total").as_double(), 1.75);
  EXPECT_EQ(outcome.at("positions").as_array().size(), 1u);
  // Lean outcomes omit positions.
  const io::Json lean = io::Json::parse(serve::outcome_frame("t", 2, 0.25, 0.5, stats, true));
  EXPECT_EQ(lean.find("positions"), nullptr);

  const io::Json error = io::Json::parse(serve::error_frame(3, "boom", "t", true));
  EXPECT_EQ(error.at("line").as_uint64(), 3u);
  EXPECT_EQ(error.at("closed").as_bool(), true);
  // Unattributed errors carry no tenant member at all.
  const io::Json anon = io::Json::parse(serve::error_frame(0, "boom", "", false));
  EXPECT_EQ(anon.find("tenant"), nullptr);
  EXPECT_EQ(anon.find("line"), nullptr);
}

}  // namespace
}  // namespace mobsrv
