// Tests for the unified fleet-session engine (sim/fleet.hpp + the k >= 1
// sim::Session):
//   * the k = 1 adapter reproduces sim::run bit-identically for every
//     registered algorithm across the trace corpus;
//   * ext::run_multi — now a thin loop over the fleet Session — reproduces
//     the seed's private batch engine bit-identically (the old loop is
//     frozen here verbatim, the PR-3 treatment of the AoS engine);
//   * fleet semantics: nearest-server service, per-server limits and move
//     split, kThrow's no-mutation guarantee, service-order handling;
//   * k-server SessionSpecs drain through core::SessionMultiplexer with
//     per-server stats, deterministically for any thread count.
#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <span>

#include "algorithms/move_to_center.hpp"
#include "algorithms/registry.hpp"
#include "core/session_multiplexer.hpp"
#include "ext/multi_server.hpp"
#include "median/geometric_median.hpp"
#include "sim/session.hpp"
#include "stats/rng.hpp"
#include "trace/corpus.hpp"

namespace mobsrv {
namespace {

using geo::Point;

// ---------------------------------------------------------------------------
// Frozen pre-redesign multi-server engine. This reproduces the seed's
// ext::run_multi verbatim — owning servers vector in the step view, decide()
// returning a fresh vector, unconditional clamping, nearest-server service —
// so the comparison pins "thin loop over the fleet Session" to bit-identical
// costs, not approximately-equal ones.
// ---------------------------------------------------------------------------

struct FrozenStepView {
  std::size_t t = 0;
  sim::BatchView batch;
  std::vector<sim::Point> servers;  // the old copying layout
  double speed_limit = 0.0;
  const sim::ModelParams* params = nullptr;
};

struct FrozenStrategy {
  virtual ~FrozenStrategy() = default;
  virtual std::vector<sim::Point> decide(const FrozenStepView& view) = 0;
};

struct FrozenStatic final : FrozenStrategy {
  std::vector<sim::Point> decide(const FrozenStepView& view) override { return view.servers; }
};

struct FrozenAssignAndChase final : FrozenStrategy {
  std::vector<sim::Point> decide(const FrozenStepView& view) override {
    std::vector<sim::Point> next = view.servers;
    if (view.batch.empty()) return next;
    std::vector<std::vector<geo::Point>> assigned(view.servers.size());
    for (const sim::Point v : view.batch) {
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < view.servers.size(); ++i) {
        const double d = geo::distance(view.servers[i], v);
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      assigned[best].push_back(v);
    }
    for (std::size_t i = 0; i < next.size(); ++i) {
      if (assigned[i].empty()) continue;
      const geo::Point center = med::closest_center(assigned[i], view.servers[i]);
      const double dist = geo::distance(view.servers[i], center);
      const double step = std::min(
          alg::MoveToCenter::damped_step(assigned[i].size(), view.params->move_cost_weight, dist),
          view.speed_limit);
      next[i] = geo::move_toward(view.servers[i], center, step);
    }
    return next;
  }
};

struct FrozenResult {
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  std::vector<sim::Point> final_positions;
};

double frozen_nearest_service(const std::vector<sim::Point>& servers, sim::BatchView batch) {
  double total = 0.0;
  for (const sim::Point v : batch) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& s : servers) best = std::min(best, geo::distance(s, v));
    total += best;
  }
  return total;
}

FrozenResult frozen_run_multi(const sim::Instance& instance, std::vector<sim::Point> starts,
                              FrozenStrategy& strategy, double speed_factor = 1.0) {
  const sim::ModelParams& params = instance.params();
  const double limit = params.max_step * speed_factor;
  std::vector<sim::Point> servers = std::move(starts);
  FrozenResult result;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    FrozenStepView view;
    view.t = t;
    view.batch = instance.step(t);
    view.servers = servers;
    view.speed_limit = limit;
    view.params = &params;
    std::vector<sim::Point> proposals = strategy.decide(view);
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const sim::Point next = geo::move_toward(servers[i], proposals[i], limit);
      result.move_cost += params.move_cost_weight * geo::distance(servers[i], next);
      servers[i] = next;
    }
    result.service_cost += frozen_nearest_service(servers, instance.step(t));
  }
  result.total_cost = result.move_cost + result.service_cost;
  result.final_positions = std::move(servers);
  return result;
}

sim::Instance hotspot_instance(std::uint64_t seed, std::size_t horizon = 96) {
  ext::MultiHotspotParams params;
  params.horizon = horizon;
  params.clusters = 3;
  stats::Rng rng(seed);
  return ext::make_multi_hotspot(params, rng);
}

// ---------------------------------------------------------------------------
// run_multi == frozen seed engine, bit for bit.
// ---------------------------------------------------------------------------

TEST(FleetRunMulti, ReproducesFrozenSeedEngineBitIdentically) {
  for (const std::uint64_t seed : {1u, 7u}) {
    const sim::Instance instance = hotspot_instance(seed);
    for (const int k : {1, 2, 4, 8}) {
      const auto starts = ext::spread_starts(instance, k, 10.0);

      FrozenAssignAndChase frozen_chase;
      const FrozenResult expected = frozen_run_multi(instance, starts, frozen_chase);
      ext::AssignAndChase chase;
      const ext::MultiRunResult actual = ext::run_multi(instance, starts, chase);
      EXPECT_EQ(actual.total_cost, expected.total_cost) << "chase k=" << k << " seed=" << seed;
      EXPECT_EQ(actual.move_cost, expected.move_cost) << "chase k=" << k;
      EXPECT_EQ(actual.service_cost, expected.service_cost) << "chase k=" << k;
      EXPECT_EQ(actual.final_positions, expected.final_positions) << "chase k=" << k;

      FrozenStatic frozen_static;
      const FrozenResult still_expected = frozen_run_multi(instance, starts, frozen_static);
      ext::StaticServers still;
      const ext::MultiRunResult still_actual = ext::run_multi(instance, starts, still);
      EXPECT_EQ(still_actual.total_cost, still_expected.total_cost) << "static k=" << k;
      EXPECT_EQ(still_actual.service_cost, still_expected.service_cost) << "static k=" << k;
    }
  }
}

TEST(FleetRunMulti, SpeedAugmentationMatchesFrozenEngine) {
  const sim::Instance instance = hotspot_instance(3, 64);
  const auto starts = ext::spread_starts(instance, 4, 6.0);
  FrozenAssignAndChase frozen;
  ext::AssignAndChase chase;
  const FrozenResult expected = frozen_run_multi(instance, starts, frozen, 2.0);
  const ext::MultiRunResult actual = ext::run_multi(instance, starts, chase, 2.0);
  EXPECT_EQ(actual.total_cost, expected.total_cost);
  EXPECT_EQ(actual.final_positions, expected.final_positions);
}

// ---------------------------------------------------------------------------
// The k = 1 adapter: fleet core == single-server engine, bit for bit.
// ---------------------------------------------------------------------------

TEST(FleetSession, AdapterReproducesRunOnTraceCorpusBitIdentically) {
  for (const trace::CorpusScenario& scenario : trace::corpus_scenarios()) {
    const trace::TraceFile file = trace::make_corpus_trace(scenario.name, 11, 0.05);
    const sim::Instance& instance = file.instance;
    for (const std::string& name : alg::algorithm_names()) {
      sim::RunOptions options;
      options.speed_factor = 1.5;
      const sim::AlgorithmPtr reference_algo = alg::make_algorithm(name, 42);
      const sim::RunResult reference = sim::run(instance, *reference_algo, options);

      // Explicit fleet-of-one construction through the adapter.
      options.record_positions = false;
      sim::FleetAlgorithmPtr fleet_algo = alg::make_fleet_algorithm(name, 42);
      sim::Session session({instance.start()}, instance.params(), *fleet_algo, options);
      for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));

      EXPECT_EQ(session.total_cost(), reference.total_cost) << scenario.name << " " << name;
      EXPECT_EQ(session.move_cost(), reference.move_cost) << scenario.name << " " << name;
      EXPECT_EQ(session.service_cost(), reference.service_cost) << scenario.name << " " << name;
      EXPECT_EQ(session.position(), reference.final_position) << scenario.name << " " << name;
    }
  }
}

TEST(FleetSession, AdapterKeepsRegistryNameAndRejectsFleets) {
  for (const std::string& name : alg::algorithm_names()) {
    const sim::FleetAlgorithmPtr fleet_algo = alg::make_fleet_algorithm(name, 7);
    EXPECT_EQ(fleet_algo->name(), name);
  }
  // A single-server strategy cannot drive k > 1 servers.
  sim::FleetAlgorithmPtr mtc = alg::make_fleet_algorithm("MtC");
  sim::ModelParams params;
  sim::RunOptions options;
  options.record_positions = false;
  EXPECT_THROW(sim::Session({Point{0.0}, Point{1.0}}, params, *mtc, options), ContractViolation);
}

// ---------------------------------------------------------------------------
// Fleet engine semantics.
// ---------------------------------------------------------------------------

sim::Instance two_cluster_instance(std::size_t horizon = 30) {
  std::vector<sim::RequestBatch> steps(horizon);
  for (auto& s : steps) s.requests = {Point{-10.0, 0.0}, Point{10.0, 0.0}};
  sim::ModelParams params;
  params.move_cost_weight = 4.0;
  return sim::Instance(Point{0.0, 0.0}, params, std::move(steps));
}

TEST(FleetSession, NearestServerServiceAndPerServerMoveSplit) {
  const sim::Instance instance = two_cluster_instance(8);
  ext::AssignAndChase chase;
  sim::RunOptions options;
  options.record_positions = false;
  sim::Session session(ext::spread_starts(instance, 2, 2.0), instance.params(), chase, options);
  double move = 0.0, service = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const sim::StepOutcome outcome = session.push(instance.step(t));
    EXPECT_EQ(outcome.t, t);
    move += outcome.cost.move;
    service += outcome.cost.service;
  }
  EXPECT_EQ(session.fleet_size(), 2u);
  EXPECT_EQ(session.steps(), instance.horizon());
  // Step-outcome sums agree with the running totals (up to FP association).
  EXPECT_NEAR(session.move_cost(), move, 1e-9 * (1.0 + move));
  EXPECT_DOUBLE_EQ(session.service_cost(), service);
  // Symmetric demand: both servers move, and the split sums to the total.
  EXPECT_GT(session.server_move_cost(0), 0.0);
  EXPECT_GT(session.server_move_cost(1), 0.0);
  EXPECT_NEAR(session.server_move_cost(0) + session.server_move_cost(1), session.move_cost(),
              1e-9 * (1.0 + session.move_cost()));
  // Two servers parked near the clusters serve far cheaper than one at the
  // start ever could: per-step service is below the single-server optimum 20.
  EXPECT_LT(session.service_cost(), 20.0 * static_cast<double>(instance.horizon()));
}

/// Teleports every server; used to probe limit enforcement.
class FleetRunaway final : public sim::FleetAlgorithm {
 public:
  void decide(const sim::FleetStepView& view, std::span<sim::Point> proposals) override {
    for (std::size_t i = 0; i < proposals.size(); ++i) {
      proposals[i] = view.servers[i];
      proposals[i][0] += 100.0;
    }
  }
  std::string name() const override { return "FleetRunaway"; }
};

TEST(FleetSession, ThrowPolicyRejectsBeforeMutatingAnyServer) {
  const sim::Instance instance = two_cluster_instance(2);
  FleetRunaway runaway;
  sim::RunOptions options;
  options.record_positions = false;
  const auto starts = ext::spread_starts(instance, 3, 1.0);
  sim::Session session(starts, instance.params(), runaway, options);
  EXPECT_THROW(session.push(instance.step(0)), ContractViolation);
  // The strong guarantee: nothing moved, nothing was charged.
  EXPECT_EQ(session.fleet(), starts);
  EXPECT_EQ(session.total_cost(), 0.0);
  EXPECT_EQ(session.steps(), 0u);
}

TEST(FleetSession, ClampPolicyClampsEveryServerAndFlags) {
  const sim::Instance instance = two_cluster_instance(2);
  FleetRunaway runaway;
  sim::RunOptions options;
  options.record_positions = false;
  options.policy = sim::SpeedLimitPolicy::kClamp;
  const auto starts = ext::spread_starts(instance, 2, 1.0);
  sim::Session session(starts, instance.params(), runaway, options);
  const sim::StepOutcome outcome = session.push(instance.step(0));
  EXPECT_TRUE(outcome.clamped);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(geo::distance(starts[i], session.position(i)), 1.0, 1e-12);  // m = 1
  EXPECT_NEAR(outcome.cost.move, 2 * 4.0 * 1.0, 1e-12);  // two servers, D = 4
}

TEST(FleetSession, ServeThenMoveChargesServiceFromPreMovePositions) {
  // One step, one request at x = 10, one-server-fleet... use k = 2 to hit
  // the fleet path: servers at 0 and 4, request at 10.
  std::vector<sim::RequestBatch> steps(1);
  steps[0].requests = {Point{10.0}};
  sim::ModelParams params;
  params.move_cost_weight = 1.0;
  params.order = sim::ServiceOrder::kServeThenMove;
  const sim::Instance instance(Point{0.0}, params, std::move(steps));

  ext::AssignAndChase chase;
  sim::RunOptions options;
  options.record_positions = false;
  sim::Session session({Point{0.0}, Point{4.0}}, params, chase, options);
  const sim::StepOutcome outcome = session.push(instance.step(0));
  // Service charged before the move: nearest pre-move server is at 4 → 6.
  EXPECT_DOUBLE_EQ(outcome.cost.service, 6.0);
}

TEST(FleetSession, FleetSessionsKeepNoHistory) {
  sim::ModelParams params;
  ext::StaticServers still;
  sim::RunOptions history_on;  // record_positions defaults to true
  EXPECT_THROW(sim::Session({Point{0.0}, Point{1.0}}, params, still, history_on),
               ContractViolation);
  sim::RunOptions off;
  off.record_positions = false;
  sim::Session session({Point{0.0}, Point{1.0}}, params, still, off);
  EXPECT_THROW((void)session.result(), ContractViolation);  // RunResult is k = 1 only
}

// ---------------------------------------------------------------------------
// k-server tenants in the multiplexer.
// ---------------------------------------------------------------------------

TEST(FleetMultiplexer, FleetSpecDrainsWithPerServerStats) {
  const auto workload = std::make_shared<const sim::Instance>(hotspot_instance(5, 48));
  par::ThreadPool pool(3);
  core::SessionMultiplexer mux(pool);

  core::SessionSpec fleet_spec;
  fleet_spec.workload = workload;
  fleet_spec.algorithm = "AssignAndChase";
  fleet_spec.fleet_size = 4;
  fleet_spec.starts = ext::spread_starts(*workload, 4, 10.0);
  fleet_spec.tenant = "fleet-4";
  mux.add(fleet_spec);

  core::SessionSpec single_spec;
  single_spec.workload = workload;
  single_spec.algorithm = "MtC";
  single_spec.tenant = "solo";
  mux.add(single_spec);

  mux.drain();
  EXPECT_EQ(mux.live(), 0u);

  const core::SessionStats fleet_stats = mux.stats(0);
  EXPECT_EQ(fleet_stats.fleet_size, 4u);
  ASSERT_EQ(fleet_stats.positions.size(), 4u);
  ASSERT_EQ(fleet_stats.per_server_move_cost.size(), 4u);
  EXPECT_EQ(fleet_stats.position, fleet_stats.positions[0]);

  // The multiplexed fleet session is the same engine run_multi drives:
  // identical costs and final positions, bit for bit (run_multi clamps, so
  // mirror its policy in the spec).
  core::SessionSpec clamped = fleet_spec;
  clamped.policy = sim::SpeedLimitPolicy::kClamp;
  core::SessionMultiplexer clamped_mux(pool);
  clamped_mux.add(clamped);
  clamped_mux.drain();
  ext::AssignAndChase chase;
  const ext::MultiRunResult direct = ext::run_multi(*workload, fleet_spec.starts, chase);
  const core::SessionStats clamped_stats = clamped_mux.stats(0);
  EXPECT_EQ(clamped_stats.total_cost, direct.total_cost);
  EXPECT_EQ(clamped_stats.move_cost, direct.move_cost);
  EXPECT_EQ(clamped_stats.service_cost, direct.service_cost);
  EXPECT_EQ(clamped_stats.positions, direct.final_positions);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(clamped_stats.per_server_move_cost[i], direct.per_server_move_cost[i]) << i;

  const core::SessionStats solo = mux.stats(1);
  EXPECT_EQ(solo.fleet_size, 1u);
  ASSERT_EQ(solo.positions.size(), 1u);
}

TEST(FleetMultiplexer, MixedFleetsDeterministicForAnyThreadCount) {
  std::vector<std::vector<core::SessionStats>> snapshots;
  for (const unsigned threads : {1u, 4u}) {
    par::ThreadPool pool(threads);
    core::SessionMultiplexer mux(pool, /*grain=*/3);
    for (std::uint64_t s = 0; s < 60; ++s) {
      const auto workload = std::make_shared<const sim::Instance>(
          hotspot_instance(s % 4, 16 + 4 * (s % 5)));
      core::SessionSpec spec;
      spec.workload = workload;
      const std::size_t k = 1 + s % 4;
      spec.fleet_size = k;
      spec.algorithm = k == 1 ? "MtC" : "AssignAndChase";
      spec.starts = ext::spread_starts(*workload, static_cast<int>(k), 5.0);
      spec.tenant = std::string("t") + std::to_string(s);
      mux.add(std::move(spec));
    }
    mux.drain();
    snapshots.push_back(mux.snapshot());
  }
  ASSERT_EQ(snapshots[0].size(), snapshots[1].size());
  for (std::size_t s = 0; s < snapshots[0].size(); ++s) {
    EXPECT_EQ(snapshots[1][s].total_cost, snapshots[0][s].total_cost) << s;
    EXPECT_EQ(snapshots[1][s].positions, snapshots[0][s].positions) << s;
  }
}

TEST(FleetMultiplexer, SingleServerNameWithFleetSizeRejected) {
  const auto workload = std::make_shared<const sim::Instance>(hotspot_instance(1, 8));
  par::ThreadPool pool(1);
  core::SessionMultiplexer mux(pool);
  core::SessionSpec bad;
  bad.workload = workload;
  bad.algorithm = "MtC";
  bad.fleet_size = 3;
  EXPECT_THROW(mux.add(std::move(bad)), ContractViolation);
  EXPECT_EQ(mux.size(), 0u);
}

}  // namespace
}  // namespace mobsrv
