#!/usr/bin/env python3
"""Cross-check docs/OBSERVABILITY.md against `mobsrv_serve --dump-metrics`.

Both directions are enforced:
  * every metric the binary emits must appear in the docs' metric catalog
    (docs drift: a metric was added but never documented);
  * every metric named in the catalog must exist in the runtime dump
    (code drift: a metric was renamed/removed but the docs still list it);
  * for names present on both sides, the documented type (counter / gauge /
    histogram) must match the runtime type.

The runtime side is the NDJSON catalog printed by `mobsrv_serve
--dump-metrics` — one {"name","type","unit","help"} object per line. The
docs side is every markdown table row in docs/OBSERVABILITY.md whose first
cell is a backticked dotted metric name (`serve.frames_total`); the second
cell is the type. Rows whose first cell is not a backticked dotted name
(schema tables, examples) are ignored, so the rest of the document can
mention metrics freely.

Usage: check_metrics_docs.py --docs docs/OBSERVABILITY.md --serve build/mobsrv_serve
Exit: 0 when consistent, 1 with a report otherwise.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

# A catalog row: | `serve.frames_total` | counter | ... — the name must be
# backticked and dotted so prose tables elsewhere in the doc are skipped.
ROW_RE = re.compile(r"^\|\s*`([a-z]+(?:\.[a-z0-9_]+)+)`\s*\|\s*([a-z]+)\s*\|")


def runtime_catalog(serve: pathlib.Path) -> dict:
    result = subprocess.run(
        [str(serve.resolve()), "--dump-metrics"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    if result.returncode != 0:
        raise RuntimeError(f"{serve} --dump-metrics exited {result.returncode}")
    catalog = {}
    for line in result.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        catalog[entry["name"]] = entry["type"]
    if not catalog:
        raise RuntimeError(f"{serve} --dump-metrics printed no metrics")
    return catalog


def documented_catalog(docs_text: str) -> dict:
    catalog = {}
    for line in docs_text.splitlines():
        match = ROW_RE.match(line.strip())
        if match:
            catalog[match.group(1)] = match.group(2)
    return catalog


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--docs", default="docs/OBSERVABILITY.md", type=pathlib.Path)
    parser.add_argument("--serve", default="build/mobsrv_serve", type=pathlib.Path)
    args = parser.parse_args()

    if not args.docs.is_file():
        print(f"check_metrics_docs: docs file not found: {args.docs}", file=sys.stderr)
        return 1
    if not args.serve.is_file():
        print(f"check_metrics_docs: binary not found: {args.serve}", file=sys.stderr)
        return 1

    in_runtime = runtime_catalog(args.serve)
    in_docs = documented_catalog(args.docs.read_text(encoding="utf-8"))

    failures = []
    undocumented = sorted(set(in_runtime) - set(in_docs))
    stale = sorted(set(in_docs) - set(in_runtime))
    if undocumented:
        failures.append(
            f"metrics emitted by --dump-metrics but missing from {args.docs}: "
            + ", ".join(undocumented)
        )
    if stale:
        failures.append(
            f"metrics documented in {args.docs} but absent from --dump-metrics: "
            + ", ".join(stale)
        )
    for name in sorted(set(in_runtime) & set(in_docs)):
        if in_runtime[name] != in_docs[name]:
            failures.append(
                f"{name}: documented as {in_docs[name]} but runtime says {in_runtime[name]}"
            )

    if failures:
        print("check_metrics_docs: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_metrics_docs: OK ({len(in_runtime)} metrics vs {args.docs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
