/// \file trace_main.cpp
/// mobsrv_trace — record, replay, inspect, convert, import and batch-replay
/// on-disk workload traces.
///
///   mobsrv_trace list                                     # corpus scenarios
///   mobsrv_trace record  --scenario=N [--seed=S] [--scale=F] [--algos=A,B]
///                        [--speed-factor=X] --out=FILE     # generate + run + save
///   mobsrv_trace replay  --in=FILE|DIR [--quiet]           # verify bit-identically
///   mobsrv_trace inspect --in=FILE [--json]                # describe a trace
///   mobsrv_trace convert --in=FILE --out=FILE              # transcode jsonl <-> mtb
///   mobsrv_trace corpus  --dir=DIR [--seed=S] [--scale=F] [--codec=C]
///                        [--algos=A,B]                     # snapshot every scenario
///   mobsrv_trace batch   --dir=DIR [--algos=A,B] [--threads=N] [--speed-factor=X]
///                        [--json=PATH] [--baseline]        # sharded batch replay
///   mobsrv_trace import  --in=CSV --format=demand|waypoints --out=FILE
///                        [--d=D] [--m=M] [--server-speed=S] [--agent-speed=A]
///   mobsrv_trace checkpoint --in=FILE [--fleet=K] [--algos=A,B] [--at=FRAC]
///                        [--ckpt=PATH] [--threads=N]  # save→restore→verify
///
/// Codecs are chosen by file extension: .jsonl (JSON Lines) or .mtb
/// (binary). Reading sniffs the codec, so any command accepts either.
/// Checkpoint files use their own versioned binary format (.msck).
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/mobsrv.hpp"
#include "io/cli.hpp"
#include "serve/snapshot.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mobsrv;

void print_usage(std::ostream& os) {
  os << "usage: mobsrv_trace <command> [flags]\n"
        "commands:\n"
        "  list     print the corpus scenario names\n"
        "  record   --scenario=N [--seed=S] [--scale=F] [--algos=A,B] [--speed-factor=X]\n"
        "           --out=FILE           generate a scenario, run algorithms, save all\n"
        "  replay   --in=FILE|DIR [--quiet]\n"
        "           re-run recorded runs, verify costs bit-identically\n"
        "  inspect  --in=FILE [--json]   describe a trace file\n"
        "  convert  --in=FILE --out=FILE transcode between .jsonl and .mtb\n"
        "  corpus   --dir=DIR [--seed=S] [--scale=F] [--codec=jsonl|binary] [--algos=A,B]\n"
        "           snapshot every generator into DIR (optionally with recorded runs)\n"
        "  batch    --dir=DIR [--algos=A,B] [--threads=N] [--speed-factor=X]\n"
        "           [--json=PATH] [--baseline]   sharded batch replay + summary\n"
        "  import   --in=CSV --format=demand|waypoints --out=FILE [--d=D] [--m=M]\n"
        "           [--server-speed=S] [--agent-speed=A]   import an external trace\n"
        "  checkpoint --in=FILE [--fleet=K] [--algos=A,B] [--at=FRAC] [--ckpt=PATH]\n"
        "           [--threads=N]   run the trace's workload to FRAC of its horizon,\n"
        "           checkpoint the multiplexer to disk, restore into a fresh one,\n"
        "           drain, and verify bit-identity against an uninterrupted run\n"
        "  chaos    --in=FILE [--stride=N] [--flips=N] [--seed=S] [--quiet]\n"
        "           torture an MSRVSS2 snapshot chain: truncate at every offset,\n"
        "           flip bits, duplicate/reorder/drop segments; every mutation must\n"
        "           load bit-identically to a complete prefix or fail loudly\n";
}

std::vector<std::string> parse_algos(const std::string& value) { return io::split_list(value); }

std::string require_flag(const io::Args& args, const std::string& name) {
  const std::string value = args.get_string(name, "");
  if (value.empty()) throw ContractViolation("missing required flag --" + name);
  return value;
}

/// Rejects typo'd flags up front — a silently ignored `--sede=7` would
/// record seed 0 while the user believes the trace encodes seed 7.
void reject_unknown_flags(const io::Args& args, const std::string& command,
                          std::initializer_list<const char*> known) {
  for (const std::string& name : args.flag_names()) {
    if (name == "help") continue;
    bool ok = false;
    for (const char* flag : known) ok = ok || name == flag;
    if (!ok)
      throw ContractViolation("unknown flag --" + name + " for command '" + command + "'");
  }
}

/// Appends recorded runs of the named algorithms (default: all registered).
void append_runs(trace::TraceFile& file, const std::vector<std::string>& algos,
                 double speed_factor, std::uint64_t seed) {
  const std::vector<std::string> names = algos.empty() ? alg::algorithm_names() : algos;
  for (const std::string& name : names)
    file.runs.push_back(trace::record_run(file.instance, name, seed, speed_factor));
}

int cmd_list() {
  std::cout << "corpus scenarios:\n";
  for (const trace::CorpusScenario& s : trace::corpus_scenarios())
    std::cout << "  " << s.name << "  —  " << s.description << "\n";
  return 0;
}

int cmd_record(const io::Args& args) {
  const std::string scenario = require_flag(args, "scenario");
  const std::string out = require_flag(args, "out");
  const std::uint64_t seed = args.get_uint64("seed", 0);
  const double scale = args.get_double("scale", 1.0);
  const double speed_factor = args.get_double("speed-factor", 1.5);

  trace::TraceFile file = trace::make_corpus_trace(scenario, seed, scale);
  append_runs(file, parse_algos(args.get_string("algos", "")), speed_factor, seed);
  trace::write_trace(out, file);
  std::cout << "recorded " << file.meta.name << " (T = " << file.instance.horizon() << ", dim "
            << file.instance.dim() << ", " << file.runs.size() << " runs) -> " << out << "\n";
  return 0;
}

int replay_one(const std::filesystem::path& path, bool quiet, std::size_t& checks,
               std::size_t& mismatches) {
  const trace::TraceFile file = trace::read_trace(path);
  const trace::ReplayReport report = trace::replay(file);
  checks += report.outcomes.size();
  for (const trace::ReplayOutcome& o : report.outcomes) {
    if (!o.match) ++mismatches;
    if (quiet && o.match) continue;
    std::cout << "  " << path.filename().string() << "  " << o.algorithm << ": recorded "
              << io::format_double(o.recorded_total, 17) << ", replayed "
              << io::format_double(o.replayed_total, 17) << " → "
              << (o.match ? "MATCH" : "MISMATCH") << "\n";
  }
  if (report.outcomes.empty() && !quiet)
    std::cout << "  " << path.filename().string() << ": no recorded runs (nothing to verify)\n";
  return report.all_match() ? 0 : 1;
}

int cmd_replay(const io::Args& args) {
  const std::string in = require_flag(args, "in");
  const bool quiet = args.get_bool("quiet", false);
  std::vector<std::filesystem::path> files;
  if (std::filesystem::is_directory(in))
    files = trace::list_trace_files(in);
  else
    files.push_back(in);

  std::size_t checks = 0, mismatches = 0;
  int status = 0;
  for (const std::filesystem::path& path : files)
    status |= replay_one(path, quiet, checks, mismatches);
  std::cout << "replay: " << files.size() << " file(s), " << checks << " recorded run(s), "
            << mismatches << " mismatch(es) → " << (status == 0 ? "OK" : "FAILED") << "\n";
  return status;
}

io::Json inspect_json(const std::filesystem::path& path, const trace::TraceFile& file) {
  io::Json root = io::Json::object();
  root.set("path", path.string());
  root.set("name", file.meta.name);
  root.set("source", file.meta.source);
  root.set("seed", file.meta.seed);
  root.set("dim", file.instance.dim());
  root.set("horizon", file.instance.horizon());
  root.set("requests", file.instance.total_requests());
  root.set("D", file.instance.params().move_cost_weight);
  root.set("m", file.instance.params().max_step);
  root.set("order", trace::order_name(file.instance.params().order));
  root.set("has_moving_client", file.moving_client.has_value());
  if (file.moving_client) root.set("agents", file.moving_client->agents.size());
  root.set("has_adversary", file.adversary.has_value());
  if (file.adversary) root.set("adversary_cost", file.adversary->cost);
  io::Json runs = io::Json::array();
  for (const trace::RecordedRun& run : file.runs) {
    io::Json r = io::Json::object();
    r.set("algorithm", run.algorithm);
    r.set("algo_seed", run.algo_seed);
    r.set("speed_factor", run.speed_factor);
    r.set("total_cost", run.total_cost);
    r.set("move_cost", run.move_cost);
    r.set("service_cost", run.service_cost);
    runs.push_back(std::move(r));
  }
  root.set("runs", std::move(runs));
  return root;
}

int cmd_inspect(const io::Args& args) {
  const std::filesystem::path in = require_flag(args, "in");
  const trace::TraceFile file = trace::read_trace(in);
  if (args.get_bool("json", false)) {
    std::cout << inspect_json(in, file).dump() << "\n";
    return 0;
  }
  std::cout << in.string() << ":\n"
            << "  scenario : " << file.meta.name << " (source " << file.meta.source << ", seed "
            << file.meta.seed << ")\n"
            << "  instance : dim " << file.instance.dim() << ", T = " << file.instance.horizon()
            << ", " << file.instance.total_requests() << " requests, D = "
            << io::format_double(file.instance.params().move_cost_weight) << ", m = "
            << io::format_double(file.instance.params().max_step) << ", "
            << trace::order_name(file.instance.params().order) << "\n";
  if (file.moving_client)
    std::cout << "  moving client: " << file.moving_client->agents.size()
              << " agent(s), agent speed "
              << io::format_double(file.moving_client->agent_speed) << "\n";
  if (file.adversary)
    std::cout << "  adversary: feasible solution of cost "
              << io::format_double(file.adversary->cost, 6) << "\n";
  for (const trace::RecordedRun& run : file.runs)
    std::cout << "  run: " << run.algorithm << " @ (1+δ) = "
              << io::format_double(run.speed_factor) << " → total "
              << io::format_double(run.total_cost, 6) << " (move "
              << io::format_double(run.move_cost, 6) << " + service "
              << io::format_double(run.service_cost, 6) << ")\n";
  return 0;
}

int cmd_convert(const io::Args& args) {
  const std::filesystem::path in = require_flag(args, "in");
  const std::filesystem::path out = require_flag(args, "out");
  const trace::TraceFile file = trace::read_trace(in);
  trace::write_trace(out, file);
  std::cout << "converted " << in.string() << " -> " << out.string() << " ("
            << trace::to_string(trace::codec_for_path(out)) << ")\n";
  return 0;
}

int cmd_corpus(const io::Args& args) {
  const std::string dir = require_flag(args, "dir");
  const std::uint64_t seed = args.get_uint64("seed", 0);
  const double scale = args.get_double("scale", 1.0);
  const std::string codec_name = args.get_string("codec", "jsonl");
  const std::vector<std::string> algos = parse_algos(args.get_string("algos", ""));
  const double speed_factor = args.get_double("speed-factor", 1.5);

  trace::RecorderOptions rec_options;
  rec_options.dir = dir;
  rec_options.codec = trace::codec_from_name(codec_name);
  trace::Recorder recorder(rec_options);
  const std::vector<std::filesystem::path> paths =
      trace::write_corpus(recorder, seed, scale, algos, speed_factor);
  for (const std::filesystem::path& path : paths) std::cout << "  " << path.string() << "\n";
  std::cout << "corpus: wrote " << paths.size() << " scenario files to " << dir << "\n";
  return 0;
}

int cmd_batch(const io::Args& args) {
  const std::string dir = require_flag(args, "dir");
  const int threads_raw = args.get_int("threads", 0);
  if (threads_raw < 0)
    throw ContractViolation("flag --threads must be >= 0 (0 = hardware concurrency)");
  const auto threads = static_cast<unsigned>(threads_raw);
  trace::BatchOptions options;
  options.algorithms = parse_algos(args.get_string("algos", ""));
  options.speed_factor = args.get_double("speed-factor", 1.5);

  const std::vector<std::filesystem::path> files = trace::list_trace_files(dir);
  par::ThreadPool pool(threads);
  const trace::BatchResult result = trace::run_batch(pool, files, options);
  trace::print_batch_summary(std::cout, dir, result, options, pool.size());

  if (args.get_bool("baseline", false)) {
    // Sequential baseline for the sharding speedup measurement.
    par::ThreadPool sequential(1);
    const trace::BatchResult base = trace::run_batch(sequential, files, options);
    std::cout << "  sequential baseline: " << io::format_double(base.wall_seconds, 3)
              << " s → speedup " << io::format_double(base.wall_seconds / result.wall_seconds, 3)
              << "× on " << pool.size() << " threads\n";
  }

  if (const std::string json_path = args.get_string("json", ""); !json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
      std::cerr << "mobsrv_trace: cannot open --json path '" << json_path << "'\n";
      return 1;
    }
    out << trace::batch_to_json(result).dump() << "\n";
    out.flush();
    if (!out) {
      std::cerr << "mobsrv_trace: writing --json path '" << json_path << "' failed\n";
      return 1;
    }
  }
  return result.replay_mismatches == 0 ? 0 : 1;
}

int cmd_import(const io::Args& args) {
  const std::filesystem::path in = require_flag(args, "in");
  const std::string out = require_flag(args, "out");
  const std::string format = require_flag(args, "format");

  trace::TraceFile file = [&] {
    if (format == "demand") {
      // Flags that only the waypoints format consumes must not be silently
      // dropped — the written trace would encode a different model than
      // the user asked for.
      for (const char* flag : {"server-speed", "agent-speed"})
        if (args.has(flag))
          throw ContractViolation(std::string("flag --") + flag +
                                  " applies only to --format=waypoints (demand uses --m)");
      trace::DemandImportOptions options;
      options.move_cost_weight = args.get_double("d", 1.0);
      options.max_step = args.get_double("m", 1.0);
      return trace::import_demand(in, options);
    }
    if (format == "waypoints") {
      if (args.has("m"))
        throw ContractViolation(
            "flag --m applies only to --format=demand (waypoints uses --server-speed)");
      trace::WaypointImportOptions options;
      options.move_cost_weight = args.get_double("d", 1.0);
      options.server_speed = args.get_double("server-speed", 1.0);
      options.agent_speed = args.get_double("agent-speed", 1.0);
      return trace::import_waypoints(in, options);
    }
    throw ContractViolation("flag --format expects demand or waypoints");
  }();

  trace::write_trace(out, file);
  std::cout << "imported " << in.string() << " -> " << out << " (T = " << file.instance.horizon()
            << ", dim " << file.instance.dim() << ", " << file.instance.total_requests()
            << " requests)\n";
  return 0;
}

/// End-to-end checkpoint proof over a recorded workload: run every
/// requested algorithm as a multiplexed session (fleet size --fleet), stop
/// at --at of the horizon, write the checkpoint THROUGH the on-disk codec,
/// restore it into a fresh multiplexer, drain both, and require exact
/// equality with a never-interrupted reference. Exit 0 only on bit-identity.
int cmd_checkpoint(const io::Args& args) {
  const std::filesystem::path in = require_flag(args, "in");
  const int fleet_raw = args.get_int("fleet", 1);
  if (fleet_raw < 1) throw ContractViolation("flag --fleet must be >= 1");
  const auto fleet = static_cast<std::size_t>(fleet_raw);
  const double at = args.get_double("at", 0.5);
  if (at <= 0.0 || at >= 1.0) throw ContractViolation("flag --at must be in (0, 1)");
  const int threads_raw = args.get_int("threads", 2);
  if (threads_raw < 0)
    throw ContractViolation("flag --threads must be >= 0 (0 = hardware concurrency)");
  const std::string ckpt_path = args.get_string("ckpt", "checkpoint.msck");

  const trace::TraceFile file = trace::read_trace(in);
  const auto workload = std::make_shared<const sim::Instance>(file.instance);
  // Default roster: everything that can drive the requested fleet size.
  std::vector<std::string> algos = parse_algos(args.get_string("algos", ""));
  if (algos.empty()) algos = fleet == 1 ? alg::fleet_algorithm_names() : alg::fleet_native_names();

  auto populate = [&](core::SessionMultiplexer& mux) {
    for (std::size_t a = 0; a < algos.size(); ++a) {
      core::SessionSpec spec;
      spec.workload = workload;
      spec.algorithm = algos[a];
      spec.algo_seed = 1000 + a;
      spec.speed_factor = 1.5;
      spec.fleet_size = fleet;
      if (fleet > 1) spec.starts = ext::spread_starts(*workload, static_cast<int>(fleet), 2.0);
      spec.tenant = algos[a] + "@k" + std::to_string(fleet);
      mux.add(std::move(spec));
    }
  };

  par::ThreadPool pool(static_cast<unsigned>(threads_raw));

  core::SessionMultiplexer reference(pool);
  populate(reference);
  reference.drain();

  core::SessionMultiplexer interrupted(pool);
  populate(interrupted);
  const auto cut = static_cast<std::size_t>(at * static_cast<double>(workload->horizon()));
  if (cut > 0) interrupted.step(cut);
  trace::write_checkpoint(ckpt_path, interrupted.checkpoint());

  core::SessionMultiplexer restored(pool);
  populate(restored);
  restored.restore(trace::read_checkpoint(ckpt_path));
  restored.drain();

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    const core::SessionStats a = reference.stats(i);
    const core::SessionStats b = restored.stats(i);
    const bool match = a.total_cost == b.total_cost && a.move_cost == b.move_cost &&
                       a.service_cost == b.service_cost && a.positions == b.positions &&
                       a.steps == b.steps;
    if (!match) ++mismatches;
    std::cout << "  " << a.tenant << ": uninterrupted "
              << io::format_double(a.total_cost, 17) << ", checkpointed+restored "
              << io::format_double(b.total_cost, 17) << " → "
              << (match ? "MATCH" : "MISMATCH") << "\n";
  }
  std::cout << "checkpoint: " << restored.size() << " session(s), fleet size " << fleet
            << ", cut at step " << cut << "/" << workload->horizon() << ", file " << ckpt_path
            << " (" << std::filesystem::file_size(ckpt_path) << " bytes), " << mismatches
            << " mismatch(es) → " << (mismatches == 0 ? "OK" : "FAILED") << "\n";
  return mismatches == 0 ? 0 : 1;
}

/// The snapshot torture harness. Mutates an MSRVSS2 segment chain —
/// truncation at every byte offset, single-bit flips, duplicated /
/// reordered / dropped segments — and drives every mutant through the
/// production reader (serve::read_snapshot_bytes). The contract under test
/// (docs/SERVICE.md): a torn TAIL silently resumes from the last complete
/// segment, bit-identically; every other corruption fails loudly with a
/// TraceError; nothing ever crashes (CI runs this under asan/ubsan).
int cmd_chaos(const io::Args& args) {
  const std::filesystem::path in = require_flag(args, "in");
  const int stride_raw = args.get_int("stride", 1);
  if (stride_raw < 1) throw ContractViolation("flag --stride must be >= 1");
  const auto stride = static_cast<std::size_t>(stride_raw);
  const std::uint64_t flips = args.get_uint64("flips", 64);
  const std::uint64_t seed = args.get_uint64("seed", 0);
  const bool quiet = args.get_bool("quiet", false);

  std::ifstream file(in, std::ios::binary);
  if (!file) throw ContractViolation("cannot open --in file: " + in.string());
  const std::string bytes((std::istreambuf_iterator<char>(file)),
                          std::istreambuf_iterator<char>());

  static constexpr char kMagic[] = {'M', 'S', 'R', 'V', 'S', 'S', '2', '\n'};
  constexpr std::size_t kHeader = sizeof(kMagic) + 4;  // magic + u32 version
  constexpr std::size_t kSegHeader = 1 + 8 + 4;        // tag + u64 size + u32 crc
  if (bytes.size() < kHeader || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw ContractViolation(in.string() +
                            " is not an MSRVSS2 snapshot chain (run mobsrv_serve with "
                            "--snapshot and a `checkpoint` frame to produce one)");

  // Complete-segment boundaries: every offset where the file prefix is a
  // whole chain. Parsed from the raw framing, NOT via the reader — the
  // harness must not trust the code it is torturing.
  std::vector<std::size_t> boundaries;
  std::size_t pos = kHeader;
  while (bytes.size() - pos >= kSegHeader) {
    std::uint64_t payload = 0;
    std::memcpy(&payload, bytes.data() + pos + 1, 8);
    if (payload > bytes.size() - pos - kSegHeader) break;
    pos += kSegHeader + static_cast<std::size_t>(payload);
    boundaries.push_back(pos);
  }
  if (boundaries.empty()) throw ContractViolation(in.string() + " holds no complete segment");

  // The reference states: what each complete prefix merges to, canonically
  // re-encoded so states compare as strings.
  std::vector<std::string> prefix_states;
  prefix_states.reserve(boundaries.size());
  for (const std::size_t boundary : boundaries)
    prefix_states.push_back(
        serve::encode_snapshot(serve::read_snapshot_bytes(bytes.substr(0, boundary), "prefix")));

  std::size_t checks = 0;
  std::size_t failures = 0;
  auto report = [&](const std::string& what, const std::string& why) {
    ++failures;
    if (!quiet && failures <= 20) std::cout << "  FAIL " << what << ": " << why << "\n";
  };

  // 1) Truncation sweep. A prefix holding >= 1 complete segment MUST load
  //    to exactly that prefix's state (the torn tail is dropped silently);
  //    a shorter prefix MUST fail loudly.
  for (std::size_t len = 0; len < bytes.size(); len += stride) {
    ++checks;
    std::ptrdiff_t idx = -1;
    for (std::size_t i = 0; i < boundaries.size(); ++i)
      if (boundaries[i] <= len) idx = static_cast<std::ptrdiff_t>(i);
    const std::string what = "truncate@" + std::to_string(len);
    try {
      const std::string got =
          serve::encode_snapshot(serve::read_snapshot_bytes(bytes.substr(0, len), "chaos"));
      if (idx < 0)
        report(what, "loaded from a chain with no complete segment");
      else if (got != prefix_states[static_cast<std::size_t>(idx)])
        report(what, "loaded state differs from the complete-prefix state");
    } catch (const trace::TraceError& error) {
      if (idx >= 0) report(what, std::string("torn tail failed loudly: ") + error.what());
    } catch (const std::exception& error) {
      report(what, std::string("wrong exception type: ") + error.what());
    }
  }

  // 2) Bit flips. CRC-32 catches every single-bit payload error, so a flip
  //    either fails loudly or (size/tag-field flips that tear the tail)
  //    loads to SOME complete prefix's state — never to anything else.
  auto flip_check = [&](std::size_t offset, unsigned bit) {
    ++checks;
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(static_cast<unsigned char>(mutated[offset]) ^ (1u << bit));
    const std::string what = "bitflip@" + std::to_string(offset) + "." + std::to_string(bit);
    try {
      const std::string got =
          serve::encode_snapshot(serve::read_snapshot_bytes(mutated, "chaos"));
      bool prefix = false;
      for (const std::string& state : prefix_states) prefix = prefix || state == got;
      if (!prefix) report(what, "loaded to a state no complete prefix produces");
    } catch (const trace::TraceError&) {
      // loud rejection is the contract for real corruption
    } catch (const std::exception& error) {
      report(what, std::string("wrong exception type: ") + error.what());
    }
  };
  for (std::size_t offset = 0; offset < bytes.size(); offset += stride)
    flip_check(offset, static_cast<unsigned>(offset % 8));
  stats::Rng rng(stats::mix_keys({seed, stats::hash_name("chaos")}));
  for (std::uint64_t i = 0; i < flips; ++i)
    flip_check(static_cast<std::size_t>(
                   rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1)),
               static_cast<unsigned>(rng.uniform_int(0, 7)));

  // 3) Segment surgery: duplicated, adjacent-swapped and dropped segments.
  //    Every CRC still matches, so the reader sees a syntactically valid
  //    chain — it must either merge it cleanly or reject the inconsistency
  //    (delta before base, double-open, close of a never-open slot) with a
  //    TraceError. The only failure is a crash or a foreign exception.
  std::vector<std::pair<std::size_t, std::size_t>> segments;
  {
    std::size_t start = kHeader;
    for (const std::size_t boundary : boundaries) {
      segments.emplace_back(start, boundary);
      start = boundary;
    }
  }
  auto rebuild = [&](const std::vector<std::size_t>& order) {
    std::string out = bytes.substr(0, kHeader);
    for (const std::size_t s : order)
      out += bytes.substr(segments[s].first, segments[s].second - segments[s].first);
    return out;
  };
  auto surgery_check = [&](const std::vector<std::size_t>& order, const std::string& what) {
    ++checks;
    try {
      (void)serve::read_snapshot_bytes(rebuild(order), "chaos");
    } catch (const trace::TraceError&) {
    } catch (const std::exception& error) {
      report(what, std::string("wrong exception type: ") + error.what());
    }
  };
  const std::size_t n = segments.size();
  std::vector<std::size_t> identity(n);
  for (std::size_t i = 0; i < n; ++i) identity[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> order = identity;
    order.insert(order.begin() + static_cast<std::ptrdiff_t>(i), i);
    surgery_check(order, "dup@" + std::to_string(i));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::vector<std::size_t> order = identity;
    std::swap(order[i], order[i + 1]);
    surgery_check(order, "swap@" + std::to_string(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> order;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) order.push_back(j);
    surgery_check(order, "drop@" + std::to_string(i));
  }

  std::cout << "chaos: " << in.string() << " (" << bytes.size() << " bytes, "
            << boundaries.size() << " segment(s), stride " << stride << "), " << checks
            << " mutation(s), " << failures << " failure(s) → "
            << (failures == 0 ? "OK" : "FAILED") << "\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.get_bool("help", false) || args.positionals().empty()) {
    print_usage(args.positionals().empty() && !args.has("help") ? std::cerr : std::cout);
    return args.positionals().empty() && !args.has("help") ? 2 : 0;
  }
  const std::string command = args.positionals().front();
  // run_cli maps ContractViolation — missing/unknown/malformed flags from
  // the io::Args getters and the helpers above — onto exit 2, and every
  // other failure (unreadable trace, codec error) onto exit 1. Before the
  // shared helper this tool's catch-all turned malformed numeric flag
  // values ("--seed=abc") into exit 1, unlike the other binaries.
  return io::run_cli("mobsrv_trace", nullptr, [&]() -> int {
    if (command == "list") {
      reject_unknown_flags(args, command, {});
      return cmd_list();
    }
    if (command == "record") {
      reject_unknown_flags(args, command,
                           {"scenario", "seed", "scale", "algos", "speed-factor", "out"});
      return cmd_record(args);
    }
    if (command == "replay") {
      reject_unknown_flags(args, command, {"in", "quiet"});
      return cmd_replay(args);
    }
    if (command == "inspect") {
      reject_unknown_flags(args, command, {"in", "json"});
      return cmd_inspect(args);
    }
    if (command == "convert") {
      reject_unknown_flags(args, command, {"in", "out"});
      return cmd_convert(args);
    }
    if (command == "corpus") {
      reject_unknown_flags(args, command,
                           {"dir", "seed", "scale", "codec", "algos", "speed-factor"});
      return cmd_corpus(args);
    }
    if (command == "batch") {
      reject_unknown_flags(args, command,
                           {"dir", "algos", "threads", "speed-factor", "json", "baseline"});
      return cmd_batch(args);
    }
    if (command == "import") {
      reject_unknown_flags(args, command,
                           {"in", "out", "format", "d", "m", "server-speed", "agent-speed"});
      return cmd_import(args);
    }
    if (command == "checkpoint") {
      reject_unknown_flags(args, command, {"in", "fleet", "algos", "at", "ckpt", "threads"});
      return cmd_checkpoint(args);
    }
    if (command == "chaos") {
      reject_unknown_flags(args, command, {"in", "stride", "flips", "seed", "quiet"});
      return cmd_chaos(args);
    }
    std::cerr << "mobsrv_trace: unknown command '" << command << "'\n";
    print_usage(std::cerr);
    return 2;
  });
}
