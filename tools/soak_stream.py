#!/usr/bin/env python3
"""NDJSON generator for the reduced CI soak of mobsrv_serve.

Emits a deterministic sparse-activity stream: --sessions tenants are opened,
and only 1 in 100 (the "hot" 1%) ever sends requests — the live-service
shape the active-set scheduler is built for. Three phases cover the
crash/recovery acceptance path:

    reference  opens + all six hot request steps + shutdown
               (the uninterrupted run the resumed run must match)
    part1      opens + hot steps 0-1 + checkpoint (base) + hot steps 2-3 +
               checkpoint (delta) + kill  -> mobsrv_serve exits 3
    part2      hot steps 4-5 + shutdown  (run with --resume)

Request coordinates are a pure function of (tenant, step), so reference and
part1+part2 feed byte-identical batches and the outcome frames must match
bit-for-bit (compare sorted, pump boundaries interleave tenants
differently).

    python3 tools/soak_stream.py --sessions 100000 --phase part1 | mobsrv_serve ...
"""

from __future__ import annotations

import argparse
import sys

HOT_STRIDE = 100  # 1% of the population is hot
STEPS = 6         # hot request steps, split 2 + 2 + 2 around the checkpoints


def batch(tenant: int, step: int) -> str:
    # Awkward (non-dyadic) but exactly representable-in-print coordinates:
    # repr() round-trips doubles, so the reference and resumed streams are
    # byte-identical.
    x = ((tenant * 37 + step * 11) % 400) / 32.0 - 6.25
    return f'[[{x!r}]]'


def emit_opens(out, sessions: int) -> None:
    for s in range(sessions):
        out.write(f'{{"type":"open","v":1,"tenant":"t{s}","algorithm":"Lazy","dim":1}}\n')


def emit_reqs(out, sessions: int, lo: int, hi: int) -> None:
    for step in range(lo, hi):
        for s in range(0, sessions, HOT_STRIDE):
            out.write(f'{{"type":"req","tenant":"t{s}","batch":{batch(s, step)}}}\n')


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, required=True)
    parser.add_argument("--phase", choices=["reference", "part1", "part2"], required=True)
    args = parser.parse_args()
    if args.sessions < HOT_STRIDE:
        print(f"soak_stream: --sessions must be >= {HOT_STRIDE}", file=sys.stderr)
        return 2

    out = sys.stdout
    if args.phase == "reference":
        emit_opens(out, args.sessions)
        emit_reqs(out, args.sessions, 0, STEPS)
        out.write('{"type":"shutdown"}\n')
    elif args.phase == "part1":
        emit_opens(out, args.sessions)
        emit_reqs(out, args.sessions, 0, 2)
        out.write('{"type":"checkpoint"}\n')
        emit_reqs(out, args.sessions, 2, 4)
        out.write('{"type":"checkpoint"}\n')
        out.write('{"type":"kill"}\n')
    else:  # part2, fed to mobsrv_serve --resume
        emit_reqs(out, args.sessions, 4, STEPS)
        out.write('{"type":"shutdown"}\n')
    return 0


if __name__ == "__main__":
    sys.exit(main())
