/// \file tournament_main.cpp
/// mobsrv_tournament — rank every fleet algorithm over a scenario corpus.
///
/// Loads and validates a directory of scenario files (src/scenario/), runs
/// every rostered algorithm on every scenario through the session
/// multiplexer, and prints an Elo leaderboard — markdown by default, the
/// full machine-readable report with --json. The output is byte-identical
/// at any --threads/--chunk value, so CI can diff two runs to assert
/// determinism. Exit codes follow docs/CLI.md: 0 success, 1 runtime
/// failure (unreadable corpus, malformed scenario), 2 usage error.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "io/args.hpp"
#include "io/cli.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/tournament.hpp"

namespace {

using namespace mobsrv;

void print_usage(std::ostream& out) {
  out << "usage: mobsrv_tournament --corpus=DIR [options]\n"
         "\n"
         "Runs every rostered fleet algorithm over every scenario file of a\n"
         "corpus directory and prints an Elo-style leaderboard.\n"
         "\n"
         "options:\n"
         "  --corpus=DIR        directory of *.json scenario files (required)\n"
         "  --only=a,b          run only the named scenarios\n"
         "  --algorithms=a,b    roster (default: every registered fleet algorithm)\n"
         "  --chunk=N           scenarios materialized per batch (default 8)\n"
         "  --threads=N         worker threads (default: hardware concurrency)\n"
         "  --seed=N            algorithm seed; workloads keep their file seeds (default 0)\n"
         "  --json              print the full JSON report instead of markdown\n"
         "  --out=PATH          also write the JSON report to PATH\n"
         "  --help              show this help\n";
}

int run(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(std::cout);
    return 0;
  }
  io::require_known_flags(
      args, {"corpus", "only", "algorithms", "chunk", "threads", "seed", "json", "out"});
  io::require_no_positionals(args);
  if (!args.has("corpus")) throw ContractViolation("missing required flag --corpus=DIR");

  scenario::TournamentOptions options;
  options.only = io::split_list(args.get_string("only", ""));
  options.algorithms = io::split_list(args.get_string("algorithms", ""));
  options.seed = args.get_uint64("seed", 0);
  const int chunk = args.get_int("chunk", 8);
  if (chunk < 1) throw ContractViolation("flag --chunk expects a positive integer");
  options.chunk = static_cast<std::size_t>(chunk);
  const int threads = args.get_int("threads", 0);
  if (threads < 0) throw ContractViolation("flag --threads expects a non-negative integer");
  const std::string corpus = args.get_string("corpus", "");
  const bool as_json = args.get_bool("json", false);
  const std::string out_path = args.get_string("out", "");

  par::ThreadPool pool(static_cast<unsigned>(threads));
  const scenario::TournamentResult result = scenario::run_tournament(corpus, pool, options);
  const std::string report = scenario::tournament_to_json(result).dump() + "\n";

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) throw std::runtime_error(out_path + ": cannot open for writing");
    out << report;
    if (!out) throw std::runtime_error(out_path + ": write failed");
  }

  if (as_json) {
    std::cout << report;
  } else {
    std::cout << "tournament: " << result.scenarios.size() << " scenarios x "
              << result.algorithms.size() << " algorithms (seed " << result.seed << ")\n\n"
              << scenario::leaderboard_markdown(result);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return io::run_cli("mobsrv_tournament", print_usage, [&] { return run(argc, argv); });
}
