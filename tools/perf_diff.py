#!/usr/bin/env python3
"""Perf-trajectory gate: diff two google-benchmark JSON files.

Compares the per-second `steps` counter (the engine's comparison metric —
see bench/perf_engine.cpp) of every benchmark present in BOTH files and
fails when any of them regressed by more than --threshold (default 10%).

    python3 tools/perf_diff.py --baseline prev/BENCH_perf.json \
        --current build/BENCH_perf.json [--threshold 0.10] [--metric steps]

Exit codes:
    0  no regression beyond the threshold (or nothing comparable)
    1  at least one benchmark regressed beyond the threshold
    2  bad invocation / unreadable current file

A missing baseline is NOT an error (exit 0): the first run of a trajectory
has nothing to diff against, and CI restores the baseline from the previous
run's cache, which may not exist yet.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_metrics(path: Path, metric: str) -> dict[str, float]:
    """Maps benchmark name -> metric rate, skipping aggregate rows."""
    with path.open() as handle:
        doc = json.load(handle)
    metrics: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        value = row.get(metric)
        if isinstance(value, (int, float)) and value > 0:
            metrics[row["name"]] = float(value)
    return metrics


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="previous BENCH_perf.json (missing file = nothing to diff)")
    parser.add_argument("--current", required=True, type=Path,
                        help="this build's BENCH_perf.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed fractional steps/sec drop (default 0.10)")
    parser.add_argument("--metric", default="steps",
                        help="per-second counter to compare (default: steps)")
    args = parser.parse_args()

    if not 0.0 < args.threshold < 1.0:
        print(f"perf_diff: --threshold must be in (0, 1), got {args.threshold}",
              file=sys.stderr)
        return 2
    if not args.current.is_file():
        print(f"perf_diff: current file {args.current} does not exist", file=sys.stderr)
        return 2
    if not args.baseline.is_file():
        print(f"perf_diff: no baseline at {args.baseline} — first trajectory point, "
              "nothing to diff")
        return 0

    try:
        baseline = load_metrics(args.baseline, args.metric)
    except (json.JSONDecodeError, KeyError) as error:
        # A corrupt cached baseline must not wedge CI forever; report and pass.
        print(f"perf_diff: unreadable baseline {args.baseline} ({error}) — skipping diff")
        return 0
    try:
        current = load_metrics(args.current, args.metric)
    except (json.JSONDecodeError, KeyError) as error:
        # A half-written current file is a broken invocation, not a regression.
        print(f"perf_diff: unreadable current file {args.current} ({error})", file=sys.stderr)
        return 2

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("perf_diff: no common benchmarks between baseline and current — "
              "nothing to diff")
        return 0

    regressions = []
    width = max(len(name) for name in shared)
    print(f"perf_diff: comparing {len(shared)} benchmark(s), "
          f"metric '{args.metric}', threshold {args.threshold:.0%}")
    for name in shared:
        old, new = baseline[name], current[name]
        change = new / old - 1.0
        flag = ""
        if change < -args.threshold:
            regressions.append((name, old, new, change))
            flag = "  << REGRESSION"
        print(f"  {name:<{width}}  {old:14.0f} -> {new:14.0f}  {change:+8.1%}{flag}")

    only_new = sorted(set(current) - set(baseline))
    if only_new:
        print(f"perf_diff: {len(only_new)} new benchmark(s) without a baseline: "
              + ", ".join(only_new))

    if regressions:
        print(f"perf_diff: FAILED — {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, old, new, change in regressions:
            print(f"  {name}: {old:.0f} -> {new:.0f} {args.metric}/s ({change:+.1%})",
                  file=sys.stderr)
        return 1
    print("perf_diff: OK — no regression beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
