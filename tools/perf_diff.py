#!/usr/bin/env python3
"""Perf-trajectory gate: diff two google-benchmark JSON files.

Compares the per-second `steps` counter (the engine's comparison metric —
see bench/perf_engine.cpp) of every benchmark present in BOTH files and
fails when any of them regressed by more than --threshold (default 10%).

    python3 tools/perf_diff.py --baseline prev/BENCH_perf.json \
        --current build/BENCH_perf.json [--threshold 0.10] [--metric steps] \
        [--only mux/soak] [--exclude mux/soak] \
        [--baseline-out next/BENCH_perf.json]

--only/--exclude restrict the gate to benchmarks whose name starts with the
given prefix (repeatable). This lets CI run the same JSON through two gates
with different thresholds — e.g. a loose gate for the soak rows (large
populations, noisy on shared runners) and a tight gate for everything else.
The per-row delta table is always printed for whatever survives the filter.
Note --baseline-out writes the FULL current file, not the filtered view, so
a filtered gate still rolls the whole trajectory forward.

Benchmarks present only in the current file (a freshly added scenario) are
*baselined, not silently skipped*: each is reported by name with its value,
and when --baseline-out is given the current file is written there — before
the gate verdict, so even a failing run rolls the trajectory forward and the
new metrics are gated from their very next run onward. Benchmarks present
only in the baseline (renamed/removed scenarios) are reported too, so a
rename cannot quietly drop gate coverage.

Exit codes:
    0  no regression beyond the threshold (or nothing comparable)
    1  at least one benchmark regressed beyond the threshold
    2  bad invocation / unreadable current file

A missing baseline is NOT an error (exit 0): the first run of a trajectory
has nothing to diff against, and CI restores the baseline from the previous
run's cache, which may not exist yet — every metric is simply baselined.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_metrics(path: Path, metric: str) -> dict[str, float]:
    """Maps benchmark name -> metric rate, skipping aggregate rows."""
    with path.open() as handle:
        doc = json.load(handle)
    metrics: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        if row.get("run_type") == "aggregate":
            continue
        value = row.get(metric)
        if isinstance(value, (int, float)) and value > 0:
            metrics[row["name"]] = float(value)
    return metrics


def report_baselined(names: list[str], current: dict[str, float], metric: str,
                     wrote_baseline: bool) -> None:
    """Names every first-appearance benchmark with its value — the explicit
    record that it entered the trajectory rather than being skipped."""
    if not names:
        return
    followup = ("gated from the next" if wrote_baseline
                else "pass --baseline-out to gate it from the next")
    print(f"perf_diff: {len(names)} benchmark(s) without a baseline — first appearance "
          f"(no gate this run, {followup}):")
    for name in names:
        print(f"  {name}: {current[name]:.0f} {metric}/s  "
              f"[{'baselined' if wrote_baseline else 'new'}]")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, type=Path,
                        help="previous BENCH_perf.json (missing file = nothing to diff)")
    parser.add_argument("--current", required=True, type=Path,
                        help="this build's BENCH_perf.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed fractional steps/sec drop (default 0.10)")
    parser.add_argument("--metric", default="steps",
                        help="per-second counter to compare (default: steps)")
    parser.add_argument("--only", action="append", default=[], metavar="PREFIX",
                        help="gate only benchmarks whose name starts with PREFIX "
                             "(repeatable)")
    parser.add_argument("--exclude", action="append", default=[], metavar="PREFIX",
                        help="drop benchmarks whose name starts with PREFIX from the "
                             "gate (repeatable; applied after --only)")
    parser.add_argument("--baseline-out", type=Path, default=None,
                        help="write the current file here as the next run's baseline "
                             "(written before the gate verdict, so new metrics are "
                             "baselined even when the gate fails; may equal --baseline)")
    args = parser.parse_args()

    if not 0.0 < args.threshold < 1.0:
        print(f"perf_diff: --threshold must be in (0, 1), got {args.threshold}",
              file=sys.stderr)
        return 2
    if not args.current.is_file():
        print(f"perf_diff: current file {args.current} does not exist", file=sys.stderr)
        return 2

    try:
        current = load_metrics(args.current, args.metric)
    except (json.JSONDecodeError, KeyError) as error:
        # A half-written current file is a broken invocation, not a regression.
        print(f"perf_diff: unreadable current file {args.current} ({error})", file=sys.stderr)
        return 2

    def keep(name: str) -> bool:
        if args.only and not any(name.startswith(p) for p in args.only):
            return False
        return not any(name.startswith(p) for p in args.exclude)

    filtered_out = sum(1 for name in current if not keep(name))
    current = {name: value for name, value in current.items() if keep(name)}
    if filtered_out:
        print(f"perf_diff: --only/--exclude filtered out {filtered_out} benchmark(s); "
              f"{len(current)} remain in this gate")

    baseline: dict[str, float] | None = None
    baseline_existed = args.baseline.is_file()
    if baseline_existed:
        try:
            baseline = load_metrics(args.baseline, args.metric)
            baseline = {name: value for name, value in baseline.items() if keep(name)}
        except (json.JSONDecodeError, KeyError) as error:
            # A corrupt cached baseline must not wedge CI forever; report,
            # re-baseline everything, and pass.
            print(f"perf_diff: unreadable baseline {args.baseline} ({error}) — skipping diff")

    # Roll the trajectory forward FIRST: the baseline must advance (and new
    # metrics must enter it) regardless of the gate verdict below — keeping
    # an anomalously fast run as a sticky baseline would wedge every
    # subsequent run red on heterogeneous runners.
    wrote_baseline = False
    if args.baseline_out is not None:
        try:
            args.baseline_out.write_bytes(args.current.read_bytes())
        except OSError as error:
            # A bad output path is a usage/tooling error, not a regression.
            print(f"perf_diff: cannot write baseline to {args.baseline_out} ({error})",
                  file=sys.stderr)
            return 2
        wrote_baseline = True
        print(f"perf_diff: wrote next baseline ({len(current)} benchmark(s)) "
              f"to {args.baseline_out}")

    if baseline is None:
        if not baseline_existed:  # else: corrupt baseline, already reported
            print(f"perf_diff: no baseline at {args.baseline} — first trajectory point")
        report_baselined(sorted(current), current, args.metric, wrote_baseline)
        return 0

    shared = sorted(set(baseline) & set(current))
    only_new = sorted(set(current) - set(baseline))
    only_old = sorted(set(baseline) - set(current))

    def warn_disappeared() -> None:
        if only_old:
            print(f"perf_diff: WARNING — {len(only_old)} baseline benchmark(s) missing from "
                  "the current run (renamed or removed scenarios lose gate coverage): "
                  + ", ".join(only_old))

    if not shared:
        print("perf_diff: no common benchmarks between baseline and current — "
              "nothing to diff")
        report_baselined(only_new, current, args.metric, wrote_baseline)
        warn_disappeared()
        return 0

    regressions = []
    width = max(len(name) for name in shared)
    print(f"perf_diff: comparing {len(shared)} benchmark(s), "
          f"metric '{args.metric}', threshold {args.threshold:.0%}")
    for name in shared:
        old, new = baseline[name], current[name]
        change = new / old - 1.0
        flag = ""
        if change < -args.threshold:
            regressions.append((name, old, new, change))
            flag = "  << REGRESSION"
        print(f"  {name:<{width}}  {old:14.0f} -> {new:14.0f}  {change:+8.1%}{flag}")

    report_baselined(only_new, current, args.metric, wrote_baseline)
    warn_disappeared()

    if regressions:
        print(f"perf_diff: FAILED — {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, old, new, change in regressions:
            print(f"  {name}: {old:.0f} -> {new:.0f} {args.metric}/s ({change:+.1%})",
                  file=sys.stderr)
        return 1
    print("perf_diff: OK — no regression beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
