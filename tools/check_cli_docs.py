#!/usr/bin/env python3
"""Cross-check docs/CLI.md against each binary's --help output.

Both directions are enforced:
  * every flag a binary prints in --help must appear in its docs/CLI.md
    section (docs drift: a flag was added but never documented);
  * every flag mentioned in a binary's docs/CLI.md section must appear in
    its --help output (code drift: a flag was renamed/removed but the docs
    still advertise it).

Flags are `--name` tokens; `=value` suffixes are ignored. The whole
`--benchmark_*` family (forwarded verbatim to google-benchmark) is
normalised to one token, and `--help` itself is exempt. Sections of
docs/CLI.md are delimited by `## <binary-name>` headers; prose outside a
binary's section is never scanned, so the rest of the docs can mention
flags freely.

Usage: check_cli_docs.py --docs docs/CLI.md --bindir build [binary ...]
Exit: 0 when consistent, 1 with a per-binary report otherwise.
"""

import argparse
import pathlib
import re
import subprocess
import sys

DEFAULT_BINARIES = [
    "mobsrv_bench",
    "mobsrv_trace",
    "mobsrv_perf",
    "mobsrv_serve",
    "mobsrv_tournament",
]
FLAG_RE = re.compile(r"--[A-Za-z][A-Za-z0-9_-]*")


def normalize(flag: str) -> str:
    if flag.startswith("--benchmark"):
        return "--benchmark_*"
    return flag


def extract_flags(text: str) -> set:
    flags = {normalize(m.group(0)) for m in FLAG_RE.finditer(text)}
    flags.discard("--help")
    return flags


def help_output(binary: pathlib.Path) -> str:
    # Resolve so a bare name like `mobsrv_bench` (from --bindir .) execs the
    # file rather than being looked up in PATH.
    result = subprocess.run(
        [str(binary.resolve()), "--help"], capture_output=True, text=True, timeout=60
    )
    if result.returncode != 0:
        raise RuntimeError(f"{binary} --help exited {result.returncode}")
    return result.stdout + result.stderr


def docs_sections(docs_text: str) -> dict:
    """Map `## <name>` header -> section body (up to the next `## `)."""
    sections = {}
    current = None
    lines = []
    for line in docs_text.splitlines():
        header = re.match(r"^##\s+(\S+)\s*$", line)
        if header:
            if current is not None:
                sections[current] = "\n".join(lines)
            current = header.group(1)
            lines = []
        elif current is not None:
            lines.append(line)
    if current is not None:
        sections[current] = "\n".join(lines)
    return sections


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--docs", default="docs/CLI.md", type=pathlib.Path)
    parser.add_argument("--bindir", default="build", type=pathlib.Path)
    parser.add_argument("binaries", nargs="*", default=DEFAULT_BINARIES)
    args = parser.parse_args()

    if not args.docs.is_file():
        print(f"check_cli_docs: docs file not found: {args.docs}", file=sys.stderr)
        return 1
    sections = docs_sections(args.docs.read_text(encoding="utf-8"))

    failures = []
    for name in args.binaries:
        binary = args.bindir / name
        if not binary.is_file():
            failures.append(f"{name}: binary not found at {binary}")
            continue
        if name not in sections:
            failures.append(f"{name}: no `## {name}` section in {args.docs}")
            continue
        in_help = extract_flags(help_output(binary))
        in_docs = extract_flags(sections[name])
        undocumented = sorted(in_help - in_docs)
        stale = sorted(in_docs - in_help)
        if undocumented:
            failures.append(
                f"{name}: flags in --help but missing from {args.docs}: "
                + ", ".join(undocumented)
            )
        if stale:
            failures.append(
                f"{name}: flags documented in {args.docs} but absent from --help: "
                + ", ".join(stale)
            )

    if failures:
        print("check_cli_docs: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"check_cli_docs: OK ({len(args.binaries)} binaries vs {args.docs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
