/// \file serve_main.cpp
/// mobsrv_serve — live NDJSON ingestion service over the session multiplexer.
///
///   mobsrv_serve [--snapshot=PATH] [--checkpoint-every=N] [--compact-ratio=R]
///                [--resume] [--max-inflight=N] [--default-rate=R] [--threads=N]
///                [--lean] [--metrics-out=PATH] [--metrics-every=N]
///                [--dump-metrics] [--tcp=PORT | --unix=PATH]
///
/// The service reads client frames (one JSON object per line) from stdin —
/// or from a single TCP or Unix-socket connection — routes them to
/// per-tenant sessions inside the SessionMultiplexer, and streams response
/// frames back. docs/SERVICE.md is the wire-protocol reference;
/// docs/CLI.md documents the flags.
///
/// Lifecycle: EOF, a `shutdown` frame, SIGTERM or SIGINT all drain every
/// queued step, save a final snapshot (when --snapshot is set) and emit a
/// `bye` frame. A `kill` frame exits immediately without draining (the
/// crash-test aid); restarting with `--resume` then continues
/// bit-identically from the last periodic snapshot.
#include <atomic>
#include <csignal>
#include <cstring>
#include <iostream>
#include <streambuf>
#include <string>

#include <netinet/in.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/contracts.hpp"
#include "fault/plan.hpp"
#include "io/args.hpp"
#include "io/cli.hpp"
#include "serve/service.hpp"

namespace {

using namespace mobsrv;

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// Installed WITHOUT SA_RESTART: a signal must interrupt the blocking read
/// (or accept) so the service notices the stop flag and drains gracefully.
void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Read side of a connection fd. showmanyc() asks the kernel how many bytes
/// are already buffered (FIONREAD), which is what lets the service batch
/// frame intake during a burst and pump the multiplexer when input pauses.
class FdInBuf : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, buf_, sizeof(buf_));
    if (n <= 0) return traits_type::eof();
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

  std::streamsize showmanyc() override {
    int pending = 0;
    if (::ioctl(fd_, FIONREAD, &pending) == 0 && pending > 0) return pending;
    return 0;
  }

 private:
  int fd_;
  char buf_[1 << 16];
};

/// Write side of a connection fd; flushes on sync() (the service flushes
/// whenever it goes back to waiting for input).
class FdOutBuf : public std::streambuf {
 public:
  explicit FdOutBuf(int fd) : fd_(fd) { setp(buf_, buf_ + sizeof(buf_)); }

 protected:
  int_type overflow(int_type ch) override {
    if (flush() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush(); }

 private:
  int flush() {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n < 0) {
        if (errno == EINTR) continue;
        return -1;
      }
      p += n;
    }
    setp(buf_, buf_ + sizeof(buf_));
    return 0;
  }

  int fd_;
  char buf_[1 << 16];
};

void print_usage(std::ostream& os) {
  os << "usage: mobsrv_serve [flags]\n"
        "  --snapshot=PATH        snapshot file; enables checkpointing (final save on\n"
        "                         graceful exit, plus `checkpoint` frames)\n"
        "  --checkpoint-every=N   also save every N consumed steps (0 = off; needs\n"
        "                         --snapshot)\n"
        "  --compact-ratio=R      rewrite a fresh snapshot base once the delta\n"
        "                         segments exceed R x the base size (default 4)\n"
        "  --resume               restore tenants + sessions from --snapshot if the\n"
        "                         file exists, then continue bit-identically\n"
        "  --max-inflight=N       per-tenant unconsumed-step cap before `req` frames\n"
        "                         bounce with `busy` (default 64)\n"
        "  --threads=N            multiplexer worker threads (default 0 = hardware)\n"
        "  --lean                 omit fleet positions from `outcome` frames and skip\n"
        "                         the telemetry clock reads (hot loop stays clock-free)\n"
        "  --metrics-out=PATH     write an NDJSON metrics snapshot to PATH (atomic;\n"
        "                         on graceful exit and on every `metrics` frame)\n"
        "  --metrics-every=N      also snapshot metrics every N consumed steps (0 =\n"
        "                         off; needs --metrics-out)\n"
        "  --default-rate=R       rate limit for tenants whose open frame names none\n"
        "                         (steps per round, fractions ok; 0 = unlimited)\n"
        "  --idle-timeout=N       close a tenant after N input lines with no frames\n"
        "                         from it and no queued work (timeout error frame;\n"
        "                         0 = never, the default)\n"
        "  --no-durable           skip the fsyncs on snapshot/metrics writes (faster,\n"
        "                         but saves only survive crashes, not power loss)\n"
        "  --fault-plan=PATH      torture aid: inject faults per the JSON plan (seeded,\n"
        "                         deterministic; see docs/SERVICE.md)\n"
        "  --dump-metrics         print the metric catalog (one JSON object per line:\n"
        "                         name, type, unit, help) and exit\n"
        "  --tcp=PORT             serve one TCP connection on 127.0.0.1:PORT instead\n"
        "                         of stdin/stdout\n"
        "  --unix=PATH            serve one connection on a Unix socket at PATH\n"
        "  --help                 print this help\n"
        "\n"
        "Frames are NDJSON; see docs/SERVICE.md for the wire protocol.\n";
}

[[noreturn]] void die(const std::string& message) {
  std::exit(mobsrv::io::usage_error("mobsrv_serve", message));
}

int listen_tcp(int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) die(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind 127.0.0.1:" + std::to_string(port) + ": " + std::strerror(errno));
  if (::listen(listener, 1) != 0) die(std::string("listen: ") + std::strerror(errno));
  return listener;
}

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) die("--unix path too long: " + path);
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) die(std::string("socket: ") + std::strerror(errno));
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    die("bind " + path + ": " + std::strerror(errno));
  if (::listen(listener, 1) != 0) die(std::string("listen: ") + std::strerror(errno));
  return listener;
}

/// Blocks for one client, tolerating EINTR unless the stop flag is up.
int accept_one(int listener) {
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR && !g_stop.load(std::memory_order_relaxed)) continue;
    return -1;
  }
}

int exit_code(serve::ExitReason reason) {
  // `kill` is the crash-test aid: a deliberately unclean exit reports as one.
  return reason == serve::ExitReason::kKill ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const io::Args args(argc, argv);
  if (args.has("help")) {
    print_usage(std::cout);
    return 0;
  }
  for (const std::string& name : args.flag_names()) {
    static constexpr const char* kKnown[] = {"snapshot",      "checkpoint-every",
                                             "compact-ratio", "resume",
                                             "max-inflight",  "default-rate",
                                             "threads",       "lean",
                                             "metrics-out",   "metrics-every",
                                             "idle-timeout",  "no-durable",
                                             "fault-plan",    "dump-metrics",
                                             "tcp",           "unix"};
    bool ok = false;
    for (const char* flag : kKnown) ok = ok || name == flag;
    if (!ok) {
      std::cerr << "mobsrv_serve: unknown flag --" << name << "\n";
      print_usage(std::cerr);
      return 2;
    }
  }
  if (!args.positionals().empty()) die("unexpected argument: " + args.positionals().front());

  if (args.get_bool("dump-metrics", false)) {
    // The runtime metric catalog, NDJSON — tools/check_metrics_docs.py
    // cross-checks it against docs/OBSERVABILITY.md in CI.
    for (const serve::MetricInfo& metric : serve::metric_catalog()) {
      io::Json doc = io::Json::object();
      doc.set("name", metric.name);
      doc.set("type", metric.type);
      doc.set("unit", metric.unit);
      doc.set("help", metric.help);
      std::cout << doc.dump() << '\n';
    }
    return 0;
  }

  serve::ServiceOptions options;
  fault::Injector injector;  // inert unless --fault-plan arms it
  int tcp_port = 0;
  try {
    options.snapshot_path = args.get_string("snapshot", "");
    options.checkpoint_every = static_cast<std::size_t>(args.get_uint64("checkpoint-every", 0));
    options.max_inflight = static_cast<std::size_t>(args.get_uint64("max-inflight", 64));
    options.threads = static_cast<unsigned>(args.get_uint64("threads", 0));
    options.lean = args.get_bool("lean", false);
    options.metrics_path = args.get_string("metrics-out", "");
    options.metrics_every = static_cast<std::size_t>(args.get_uint64("metrics-every", 0));
    options.default_rate = args.get_double("default-rate", 0.0);
    options.compact_ratio = args.get_double("compact-ratio", 4.0);
    options.idle_timeout = static_cast<std::size_t>(args.get_uint64("idle-timeout", 0));
    options.durable = !args.get_bool("no-durable", false);
    if (args.has("fault-plan")) {
      // A bad plan is a bad command line: PlanError lands in this catch and
      // exits 2 before the service starts.
      injector = fault::make_injector(fault::load_plan(args.get_string("fault-plan", "")));
      options.faults = &injector;
    }
    if (args.has("tcp")) tcp_port = args.get_int("tcp", 0);
  } catch (const std::exception& error) {
    // A malformed flag value is a usage error (exit 2), not a crash.
    die(error.what());
  }
  options.stop = &g_stop;
  if (options.checkpoint_every > 0 && options.snapshot_path.empty())
    die("--checkpoint-every needs --snapshot");
  if (options.metrics_every > 0 && options.metrics_path.empty())
    die("--metrics-every needs --metrics-out");
  if (options.max_inflight == 0) die("--max-inflight must be >= 1");
  if (options.default_rate < 0.0) die("--default-rate must be >= 0");
  if (options.compact_ratio <= 0.0) die("--compact-ratio must be > 0");
  if (args.has("tcp") && args.has("unix")) die("--tcp and --unix are mutually exclusive");

  install_signal_handlers();

  try {
    serve::Service service(options);
    if (args.get_bool("resume", false)) {
      if (options.snapshot_path.empty()) die("--resume needs --snapshot");
      if (std::filesystem::exists(options.snapshot_path)) {
        service.restore(options.snapshot_path);
        std::cerr << "mobsrv_serve: resumed " << service.mux().size() << " tenant(s) from "
                  << options.snapshot_path << "\n";
      }
    }

    if (args.has("tcp") || args.has("unix")) {
      const int listener =
          args.has("tcp") ? listen_tcp(tcp_port) : listen_unix(args.get_string("unix", ""));
      const int fd = accept_one(listener);
      if (fd < 0) {
        ::close(listener);
        // SIGTERM while waiting for the client: nothing to drain yet.
        return g_stop.load(std::memory_order_relaxed) ? 0 : 2;
      }
      FdInBuf inbuf(fd);
      FdOutBuf outbuf(fd);
      std::istream in(&inbuf);
      std::ostream out(&outbuf);
      const serve::ExitReason reason = service.run(in, out);
      out.flush();
      ::close(fd);
      ::close(listener);
      if (args.has("unix")) ::unlink(args.get_string("unix", "").c_str());
      return exit_code(reason);
    }

    return exit_code(service.run(std::cin, std::cout));
  } catch (const std::exception& error) {
    std::cerr << "mobsrv_serve: " << error.what() << "\n";
    return 1;
  }
}
