// E3 — Theorem 3: in the Answer-First variant (serve before moving) the
// ratio is Ω(r/D) even with augmentation.
//
// Reproduction: MtC (with augmentation, which must NOT help) on the
// Theorem-3 two-step cycler; ratio grows linearly in r and shrinks with D.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::RatioEstimate measure(const Options& options, std::size_t horizon, std::size_t r,
                            double d_weight) {
  core::RatioOptions opt =
      options.ratio_options("e03", {horizon, r, static_cast<std::uint64_t>(d_weight)});
  opt.speed_factor = 1.5;  // augmentation cannot rescue Answer-First
  opt.oracle = core::OptOracle::kAdversaryCost;
  return core::estimate_ratio(
      *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
      [=](std::size_t, stats::Rng& rng) {
        adv::Theorem3Params p;
        p.horizon = horizon;
        p.requests_per_step = r;
        p.move_cost_weight = d_weight;
        adv::AdversarialInstance a = adv::make_theorem3(p, rng);
        return core::PreparedSample{std::move(a.instance), a.adversary_cost, {}};
      },
      opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e03, "Theorem 3: Answer-First lower bound Ω(r/D)") {
  std::cout << "# E3 — Theorem 3: Answer-First lower bound Ω(r/D)\n"
            << "Claim: when requests must be answered before moving, a two-step\n"
            << "coin-flip cycle costs the online server r·m per cycle (in expectation\n"
            << "half the cycles) vs the adversary's D·m — augmentation does not help.\n\n";

  const std::size_t horizon = options.horizon(2048);

  io::Table table("MtC (Answer-First) on the Theorem-3 adversary",
                  {"r", "D", "r/D", "ratio"});
  std::vector<double> rs, ratios_d1;
  for (const double d_weight : {1.0, 4.0}) {
    for (const std::size_t r : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      const core::RatioEstimate est = measure(options, horizon, r, d_weight);
      table.row()
          .cell(r)
          .cell(d_weight, 3)
          .cell(static_cast<double>(r) / d_weight, 4)
          .cell(mean_pm(est.ratio))
          .done();
      if (d_weight == 1.0) {
        rs.push_back(static_cast<double>(r));
        ratios_d1.push_back(est.ratio.mean());
      }
    }
  }
  options.emit(table);
  check_fit(options, "ratio vs r at D=1 (claim linear ⇒ 1.0)", rs, ratios_d1, 0.7, 1.2);
  std::cout << "\n";
}

namespace {

void BM_AnswerFirstEngine(benchmark::State& state) {
  stats::Rng rng(1);
  adv::Theorem3Params p;
  p.horizon = 4096;
  p.requests_per_step = static_cast<std::size_t>(state.range(0));
  const adv::AdversarialInstance a = adv::make_theorem3(p, rng);
  alg::MoveToCenter mtc;
  sim::RunOptions opt;
  opt.speed_factor = 1.5;
  for (auto _ : state) benchmark::DoNotOptimize(sim::run(a.instance, mtc, opt));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096 *
                          state.range(0));
}
BENCHMARK(BM_AnswerFirstEngine)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

}  // namespace mobsrv::bench
