// E8 — Theorem 10: when the server is as fast as the agent (m_s = m_a),
// MtC is O(1)-competitive in the Moving Client variant WITHOUT any
// augmentation. (The paper's proof constants give ≤ 36; measured ratios are
// far smaller.)
//
// Reproduction: MtC at speed m_s = m_a on three mobility models and three
// values of D; ratio flat in T and uniformly small. A multi-agent extension
// row exercises the paper's "results can be modified for multiple agents"
// remark.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

sim::AgentPath make_agent(const std::string& model, std::size_t horizon, const geo::Point& start,
                          stats::Rng& rng) {
  if (model == "waypoint") {
    adv::RandomWaypointParams p;
    p.horizon = horizon;
    p.dim = start.dim();
    p.speed = 1.0;
    p.half_width = 30.0;
    return adv::make_random_waypoint(p, start, rng);
  }
  if (model == "gauss-markov") {
    adv::GaussMarkovParams p;
    p.horizon = horizon;
    p.dim = start.dim();
    p.speed = 1.0;
    return adv::make_gauss_markov(p, start, rng);
  }
  adv::ZigZagParams p;
  p.horizon = horizon;
  p.dim = start.dim();
  p.speed = 1.0;
  p.half_period = 16;
  return adv::make_zigzag(p, start);
}

core::RatioEstimate measure(const Options& options, const std::string& model,
                            std::size_t horizon, double d_weight, int agents) {
  core::RatioOptions opt = options.ratio_options(
      "e08", {stats::hash_name(model), horizon, static_cast<std::uint64_t>(d_weight),
              static_cast<std::uint64_t>(agents)});
  opt.speed_factor = 1.0;  // Theorem 10: NO augmentation
  opt.oracle = core::OptOracle::kGridDp1D;
  return core::estimate_ratio(
      *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
      [=](std::size_t, stats::Rng& rng) {
        sim::MovingClientInstance mc;
        mc.start = geo::Point{0.0};
        mc.server_speed = 1.0;
        mc.agent_speed = 1.0;
        mc.move_cost_weight = d_weight;
        for (int a = 0; a < agents; ++a)
          mc.agents.push_back(make_agent(model, horizon, mc.start, rng));
        return core::PreparedSample{sim::to_instance(mc), 0.0, {}};
      },
      opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e08, "Theorem 10: equal speeds ⇒ O(1)-competitive without augmentation") {
  std::cout << "# E8 — Theorem 10: equal speeds ⇒ O(1)-competitive without augmentation\n"
            << "Claim: MtC's rule (move min(m_s, d/D) toward the agent) yields a constant\n"
            << "ratio — the paper's constants are ≤ 36, measured values are far below.\n\n";

  io::Table table("MtC, m_s = m_a = 1, single agent (1-D, certified DP bracket)",
                  {"mobility", "T", "D", "ratio (vs DP upper)", "ratio (vs certified lower)"});
  std::vector<double> all_ratios;
  for (const std::string model : {"waypoint", "gauss-markov", "zigzag"}) {
    for (const double d_weight : {1.0, 4.0, 16.0}) {
      const std::size_t horizon = options.horizon(1024);
      const core::RatioEstimate est = measure(options, model, horizon, d_weight, 1);
      // The certified lower bound can degenerate to 0 on short zig-zag
      // instances (DP rounding error exceeds the relaxed cost); the
      // bracket column is then unavailable, not zero.
      const bool has_lower = est.ratio_vs_lower.count() > 0;
      table.row()
          .cell(model)
          .cell(horizon)
          .cell(d_weight, 3)
          .cell(mean_pm(est.ratio))
          .cell(has_lower ? mean_pm(est.ratio_vs_lower) : "—")
          .done();
      if (has_lower) all_ratios.push_back(est.ratio_vs_lower.mean());
    }
  }
  options.emit(table);

  double worst = 0.0;
  for (const double r : all_ratios) worst = std::max(worst, r);
  std::cout << "  const[worst certified ratio ≤ 36 (paper's constant)]: measured "
            << io::format_double(worst, 3) << " → " << (worst <= 36.0 ? "PASS" : "CHECK")
            << "\n";
  record_check(options, "worst certified ratio vs paper constant", worst, 0.0, 36.0,
               worst <= 36.0);

  // Flatness in T.
  io::Table flat("Ratio vs T (waypoint, D = 4)", {"T", "ratio"});
  std::vector<double> flat_ratios;
  for (const std::size_t base : {256u, 1024u, 4096u}) {
    const std::size_t horizon = options.horizon(base);
    const core::RatioEstimate est = measure(options, "waypoint", horizon, 4.0, 1);
    flat.row().cell(horizon).cell(mean_pm(est.ratio)).done();
    flat_ratios.push_back(est.ratio.mean());
  }
  options.emit(flat);
  check_flatness(options, "ratio vs T", flat_ratios, 1.6);

  // Multi-agent extension (paper Section 5: "can be modified to also work
  // for multiple agents"): MtC chases the batch median.
  io::Table multi("Extension: multiple agents (waypoint, D = 4, T = 1024)",
                  {"agents", "ratio (vs DP upper)"});
  for (const int agents : {1, 2, 4, 8}) {
    const core::RatioEstimate est =
        measure(options, "waypoint", options.horizon(1024), 4.0, agents);
    multi.row().cell(agents).cell(mean_pm(est.ratio)).done();
  }
  options.emit(multi);
  std::cout << "\n";
}

namespace {

void BM_EqualSpeedChase(benchmark::State& state) {
  stats::Rng rng(1);
  sim::MovingClientInstance mc;
  mc.start = geo::Point{0.0};
  mc.server_speed = 1.0;
  mc.agent_speed = 1.0;
  mc.move_cost_weight = 4.0;
  adv::RandomWaypointParams p;
  p.horizon = static_cast<std::size_t>(state.range(0));
  p.dim = 1;
  p.speed = 1.0;
  mc.agents.push_back(adv::make_random_waypoint(p, mc.start, rng));
  const sim::Instance inst = sim::to_instance(mc);
  alg::MoveToCenter mtc;
  for (auto _ : state) benchmark::DoNotOptimize(sim::run(inst, mtc));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EqualSpeedChase)->Arg(1024)->Arg(8192);

}  // namespace

}  // namespace mobsrv::bench
