// E7 — Corollary 9: MtC with augmented speed (1+δ)·m_s in the Moving
// Client variant is O(1/δ^{3/2})-competitive — in particular independent
// of T, taming the very adversary that is unbounded in E6.
//
// Reproduction: same Theorem-8 trajectories as E6 but the online server
// moves (1+δ)·m_s; the ratio must go flat in T; plus realistic mobility
// (random waypoint) where the ratio is small outright.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::RatioEstimate measure_adversarial(const Options& options, std::size_t horizon,
                                        double delta) {
  core::RatioOptions opt =
      options.ratio_options("e07", {horizon, static_cast<std::uint64_t>(delta * 1e6)});
  opt.speed_factor = 1.0 + delta;
  opt.oracle = core::OptOracle::kAdversaryCost;
  return core::estimate_ratio(
      *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
      [horizon](std::size_t, stats::Rng& rng) {
        adv::Theorem8Params p;
        p.horizon = horizon;
        p.epsilon = 1.0;  // agent twice as fast as the unaugmented server
        adv::MovingClientAdversarial a = adv::make_theorem8(p, rng);
        return core::PreparedSample{sim::to_instance(a.mc), a.adversary_cost, {}};
      },
      opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e07, "Corollary 9: augmentation tames the Moving Client adversary") {
  std::cout << "# E7 — Corollary 9: augmentation tames the Moving Client adversary\n"
            << "Claim: with speed (1+δ)·m_s, MtC is O(1/δ^{3/2})-competitive against a\n"
            << "moving client — the E6 growth disappears.\n\n";

  io::Table table("MtC with augmentation on the Theorem-8 agent (ε = 1)",
                  {"T", "delta", "ratio"});
  std::vector<double> flat_05, flat_10;
  for (const double delta : {0.5, 1.0}) {
    for (const std::size_t base : {1024u, 4096u, 16384u}) {
      const std::size_t horizon = options.horizon(base);
      const core::RatioEstimate est = measure_adversarial(options, horizon, delta);
      table.row().cell(horizon).cell(delta, 3).cell(mean_pm(est.ratio)).done();
      (delta == 0.5 ? flat_05 : flat_10).push_back(est.ratio.mean());
    }
  }
  options.emit(table);
  check_flatness(options, "ratio vs T at δ=0.5", flat_05, 1.6);
  check_flatness(options, "ratio vs T at δ=1.0", flat_10, 1.6);

  // Realistic mobility: random-waypoint agent, certified DP bracket.
  io::Table realistic("MtC (δ = 0.5) chasing a random-waypoint agent (1-D, D = 4)",
                      {"T", "ratio (vs DP upper)", "ratio (vs certified lower)"});
  for (const std::size_t base : {512u, 2048u}) {
    const std::size_t horizon = options.horizon(base);
    core::RatioOptions opt = options.ratio_options("e07rw", {horizon});
    opt.speed_factor = 1.5;
    opt.oracle = core::OptOracle::kGridDp1D;
    const core::RatioEstimate est = core::estimate_ratio(
        *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
        [horizon](std::size_t, stats::Rng& rng) {
          sim::MovingClientInstance mc;
          mc.start = geo::Point{0.0};
          mc.server_speed = 1.0;
          mc.agent_speed = 1.5;  // faster than the offline server's limit
          mc.move_cost_weight = 4.0;
          adv::RandomWaypointParams p;
          p.horizon = horizon;
          p.dim = 1;
          p.speed = 1.5;
          p.half_width = 40.0;
          mc.agents.push_back(adv::make_random_waypoint(p, mc.start, rng));
          return core::PreparedSample{sim::to_instance(mc), 0.0, {}};
        },
        opt);
    realistic.row()
        .cell(horizon)
        .cell(mean_pm(est.ratio))
        .cell(mean_pm(est.ratio_vs_lower))
        .done();
  }
  options.emit(realistic);
  std::cout << "\n";
}

namespace {

void BM_MovingClientConversion(benchmark::State& state) {
  stats::Rng rng(1);
  sim::MovingClientInstance mc;
  mc.start = geo::Point{0.0, 0.0};
  mc.server_speed = 1.0;
  mc.agent_speed = 1.0;
  adv::RandomWaypointParams p;
  p.horizon = static_cast<std::size_t>(state.range(0));
  p.speed = 1.0;
  mc.agents.push_back(adv::make_random_waypoint(p, mc.start, rng));
  for (auto _ : state) benchmark::DoNotOptimize(sim::to_instance(mc));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MovingClientConversion)->Arg(1024)->Arg(8192);

}  // namespace

}  // namespace mobsrv::bench
