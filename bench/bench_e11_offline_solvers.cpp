// E11 — system experiment: quality and cost of the offline-optimum oracles
// that every upper-bound measurement depends on.
//
// Reproduction: (a) the DP bracket tightens with grid resolution; (b) the
// convex solver lands inside the DP bracket on the line; (c) solver runtime
// scaling (google-benchmark section).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

sim::Instance workload(std::size_t horizon, std::uint64_t seed) {
  stats::Rng rng(seed);
  adv::DriftingHotspotParams p;
  p.horizon = horizon;
  p.dim = 1;
  p.move_cost_weight = 4.0;
  return adv::make_drifting_hotspot(p, rng);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e11, "offline solver quality (the OPT oracles)") {
  std::cout << "# E11 — offline solver quality (the OPT oracles)\n"
            << "The DP brackets OPT between a feasible cost and a certified lower\n"
            << "bound; the convex solver must land inside that bracket.\n\n";

  const std::size_t horizon = options.horizon(512);

  io::Table bracket("DP bracket vs grid resolution (drifting hotspot, T = " +
                        std::to_string(horizon) + ")",
                    {"cells per m", "feasible cost (UB)", "certified LB", "bracket width %"});
  const sim::Instance inst = workload(horizon, options.seed_key("e11", {1}));
  for (const double cells : {2.0, 4.0, 8.0, 16.0}) {
    opt::GridDpOptions dp_opt;
    dp_opt.cells_per_step = cells;
    const opt::GridDpResult res = opt::solve_grid_dp_1d(inst, dp_opt);
    const double width =
        100.0 * (res.solution.cost - res.solution.opt_lower_bound) / res.solution.cost;
    bracket.row()
        .cell(cells, 3)
        .cell(res.solution.cost, 5)
        .cell(res.solution.opt_lower_bound, 5)
        .cell(width, 3)
        .done();
  }
  options.emit(bracket);

  io::Table agreement(
      "General-dimension solvers vs DP bracket (5 instances)",
      {"instance", "subgradient", "+CD polish", "DP UB", "DP LB", "polish inside 10% of DP"});
  int inside = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const sim::Instance w = workload(horizon, options.seed_key("e11", {seed}));
    const opt::OfflineSolution cv = opt::solve_convex_descent(w);
    const opt::OfflineSolution best = opt::solve_best_offline(w);
    const opt::GridDpResult dp = opt::solve_grid_dp_1d(w);
    const bool ok = best.cost >= dp.solution.opt_lower_bound - 1e-9 &&
                    best.cost <= dp.solution.cost * 1.10;
    inside += ok ? 1 : 0;
    agreement.row()
        .cell(static_cast<int>(seed))
        .cell(cv.cost, 5)
        .cell(best.cost, 5)
        .cell(dp.solution.cost, 5)
        .cell(dp.solution.opt_lower_bound, 5)
        .cell(ok ? "yes" : "NO")
        .done();
  }
  options.emit(agreement);
  std::cout << "  bracket[shaping+polish within 10% of DP on all instances]: "
            << (inside == 5 ? "PASS" : "CHECK") << "\n";
  record_check(options, "instances with polish inside the DP bracket", inside, 5.0, 5.0,
               inside == 5);

  // Reachability bound sanity across dimensions.
  io::Table reach("Reachability lower bound vs best feasible (chasing hotspot)",
                  {"dim", "reach LB", "convex cost", "LB/UB"});
  for (const int dim : {1, 2, 3}) {
    std::vector<sim::RequestBatch> steps(options.horizon(128));
    for (std::size_t t = 0; t < steps.size(); ++t)
      steps[t].requests = {geo::Point::on_axis(dim, 1.5 * static_cast<double>(t + 1))};
    sim::ModelParams params;
    params.move_cost_weight = 1.0;
    params.max_step = 1.0;
    const sim::Instance chase(geo::Point::zero(dim), params, std::move(steps));
    const double lb = opt::reachability_lower_bound(chase);
    const double ub = opt::solve_convex_descent(chase).cost;
    reach.row().cell(dim).cell(lb, 5).cell(ub, 5).cell(lb / ub, 3).done();
  }
  options.emit(reach);
  std::cout << "\n";
}

namespace {

void BM_GridDp(benchmark::State& state) {
  const sim::Instance inst = workload(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) benchmark::DoNotOptimize(opt::solve_grid_dp_1d(inst));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_GridDp)->Arg(128)->Arg(512)->Arg(2048);

void BM_ConvexDescent(benchmark::State& state) {
  const sim::Instance inst = workload(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) benchmark::DoNotOptimize(opt::solve_convex_descent(inst));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ConvexDescent)->Arg(128)->Arg(512);

void BM_GridDpResolution(benchmark::State& state) {
  const sim::Instance inst = workload(512, 9);
  opt::GridDpOptions dp_opt;
  dp_opt.cells_per_step = static_cast<double>(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(opt::solve_grid_dp_1d(inst, dp_opt));
}
BENCHMARK(BM_GridDpResolution)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

}  // namespace mobsrv::bench
