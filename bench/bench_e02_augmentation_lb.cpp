// E2 — Theorem 2: with a (1+δ)m movement limit the lower bound becomes
// Ω((1/δ)·Rmax/Rmin).
//
// Reproduction: MtC with augmentation (1+δ) on the Theorem-2 adversary.
// Sweep 1: δ halves, Rmax = Rmin → ratio doubles (slope vs 1/δ ≈ 1).
// Sweep 2: fixed δ, growing Rmax/Rmin → ratio grows linearly.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::RatioEstimate measure(const Options& options, std::size_t horizon, double delta,
                            std::size_t r_min, std::size_t r_max) {
  core::RatioOptions opt = options.ratio_options(
      "e02", {horizon, static_cast<std::uint64_t>(delta * 1e6), r_min, r_max});
  opt.speed_factor = 1.0 + delta;
  opt.oracle = core::OptOracle::kAdversaryCost;
  return core::estimate_ratio(
      *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
      [=](std::size_t, stats::Rng& rng) {
        adv::Theorem2Params p;
        p.horizon = horizon;
        p.delta = delta;
        p.r_min = r_min;
        p.r_max = r_max;
        adv::AdversarialInstance a = adv::make_theorem2(p, rng);
        return core::PreparedSample{std::move(a.instance), a.adversary_cost, {}};
      },
      opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e02, "Theorem 2: lower bound Ω((1/δ)·Rmax/Rmin) with augmentation") {
  std::cout << "# E2 — Theorem 2: lower bound Ω((1/δ)·Rmax/Rmin) with augmentation\n"
            << "Claim: the adversary alternates a pin-down phase (Rmin requests) with a\n"
            << "chase phase (Rmax requests riding away) calibrated so the augmented\n"
            << "server needs x/δ rounds to catch up.\n\n";

  const std::size_t horizon = options.horizon(4096);

  io::Table by_delta("Sweep 1: ratio vs δ (Rmin = Rmax = 1)",
                     {"delta", "1/delta", "ratio", "adversary cost"});
  std::vector<double> inv_delta, ratios;
  for (const double delta : {1.0, 0.5, 0.25, 0.125, 0.0625}) {
    const core::RatioEstimate est = measure(options, horizon, delta, 1, 1);
    by_delta.row()
        .cell(delta, 4)
        .cell(1.0 / delta, 4)
        .cell(mean_pm(est.ratio))
        .cell(est.offline_proxy.mean(), 4)
        .done();
    inv_delta.push_back(1.0 / delta);
    ratios.push_back(est.ratio.mean());
  }
  options.emit(by_delta);
  check_fit(options, "ratio vs 1/δ (claim linear ⇒ 1.0)", inv_delta, ratios, 0.7, 1.3);

  io::Table by_imbalance("Sweep 2: ratio vs Rmax/Rmin (δ = 0.5, Rmin = 1)",
                         {"Rmax/Rmin", "ratio"});
  std::vector<double> imbalance, ratios2;
  for (const std::size_t r_max : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const core::RatioEstimate est = measure(options, horizon, 0.5, 1, r_max);
    by_imbalance.row().cell(r_max).cell(mean_pm(est.ratio)).done();
    imbalance.push_back(static_cast<double>(r_max));
    ratios2.push_back(est.ratio.mean());
  }
  options.emit(by_imbalance);
  check_fit(options, "ratio vs Rmax/Rmin (claim linear ⇒ 1.0)", imbalance, ratios2, 0.7, 1.2);
  std::cout << "\n";
}

namespace {

void BM_Theorem2Run(benchmark::State& state) {
  stats::Rng rng(1);
  adv::Theorem2Params p;
  p.horizon = 4096;
  p.delta = 1.0 / static_cast<double>(state.range(0));
  const adv::AdversarialInstance a = adv::make_theorem2(p, rng);
  alg::MoveToCenter mtc;
  sim::RunOptions opt;
  opt.speed_factor = 1.0 + p.delta;
  for (auto _ : state) benchmark::DoNotOptimize(sim::run(a.instance, mtc, opt));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Theorem2Run)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

}  // namespace mobsrv::bench
