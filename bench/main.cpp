/// \file main.cpp
/// The single experiment driver. Replaces the 14 standalone bench binaries.
///
///   mobsrv_bench --list                 # enumerate registered experiments
///   mobsrv_bench                        # run every experiment, full scale
///   mobsrv_bench --only=e01,e12         # run a subset, in the given order
///   mobsrv_bench --smoke                # fast end-to-end check (CI)
///   mobsrv_bench --trials=N --scale=F   # override sweep parameters
///   mobsrv_bench --no-table             # skip reproduction tables
///   mobsrv_bench --no-bench             # skip google-benchmark timings
///   mobsrv_bench --benchmark_filter=... # forwarded to google-benchmark
///
/// Kernel timings are registered per translation unit, not per experiment,
/// so --only does not scope them; subset runs skip timings unless an
/// explicit --benchmark_* flag asks for them.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <vector>

#include "core/mobsrv.hpp"
#include "registry.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: mobsrv_bench [--list] [--only=e01,e05,...] [--trials=N] [--scale=F]\n"
        "                    [--smoke] [--no-table] [--no-bench] [--benchmark_*...]\n"
        "With --only, kernel timings run only when a --benchmark_* flag is given\n"
        "(they are registered per binary and cannot be scoped to a selection).\n";
}

void print_list(std::ostream& os) {
  os << "registered experiments:\n";
  for (const mobsrv::bench::Experiment& e : mobsrv::bench::Registry::instance().experiments())
    os << "  " << e.id << "  " << e.title << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const mobsrv::io::Args args(argc, argv);

  // Reject typo'd flags and stray positionals up front — a silently ignored
  // `--smok` (or `smoke` without dashes) would run the full-scale sweeps
  // instead of the smoke subset.
  static const char* known_flags[] = {"help",  "list",  "only",     "trials",
                                      "scale", "smoke", "no-table", "no-bench"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || arg.rfind("--benchmark", 0) == 0) continue;
    const std::string name = arg.substr(2, arg.find('=') - 2);
    bool known = false;
    for (const char* flag : known_flags) known = known || name == flag;
    if (!known) {
      std::cerr << "mobsrv_bench: unknown flag --" << name << "\n";
      print_usage(std::cerr);
      return 2;
    }
  }
  if (!args.positionals().empty()) {
    std::cerr << "mobsrv_bench: unexpected argument '" << args.positionals().front()
              << "' (flags start with --)\n";
    print_usage(std::cerr);
    return 2;
  }

  bool explicit_benchmark_flags = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) explicit_benchmark_flags = true;

  // Args getters throw ContractViolation on malformed values ("--trials=abc").
  bool no_table = false;
  bool run_kernels = false;
  mobsrv::bench::Options options;
  std::vector<mobsrv::bench::Experiment> selected;
  try {
    if (args.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (args.get_bool("list", false)) {
      print_list(std::cout);
      return 0;
    }

    const bool smoke = args.get_bool("smoke", false);
    options.trials = args.get_int("trials", smoke ? 2 : 6);
    options.scale = args.get_double("scale", smoke ? 0.05 : 1.0);
    if (options.trials < 1) throw mobsrv::ContractViolation("flag --trials must be >= 1");
    if (options.scale <= 0.0) throw mobsrv::ContractViolation("flag --scale must be > 0");
    no_table = args.get_bool("no-table", false);

    const std::vector<std::string> only_ids =
        mobsrv::bench::parse_only_list(args.get_string("only", ""));
    try {
      selected = mobsrv::bench::Registry::instance().select(only_ids);
    } catch (const mobsrv::ContractViolation& error) {
      std::cerr << "mobsrv_bench: " << error.what() << "\n";
      print_list(std::cerr);
      return 2;
    }

    // Smoke runs are a table-level end-to-end check, and kernel timings
    // cannot be scoped to an --only subset; in both cases run them only on
    // explicit request.
    run_kernels = !args.get_bool("no-bench", false) &&
                  (explicit_benchmark_flags || (!smoke && only_ids.empty()));
  } catch (const mobsrv::ContractViolation& error) {
    std::cerr << "mobsrv_bench: " << error.what() << "\n";
    print_usage(std::cerr);
    return 2;
  }

  if (!no_table) {
    mobsrv::par::ThreadPool pool;
    options.pool = &pool;
    for (const mobsrv::bench::Experiment& experiment : selected) {
      std::cout << "== " << experiment.id << " — " << experiment.title << " ==\n";
      try {
        experiment.run(options);
      } catch (const std::exception& error) {
        std::cerr << "mobsrv_bench: experiment " << experiment.id << " failed: " << error.what()
                  << "\n";
        return 1;
      }
    }
  }

  if (!run_kernels) {
    if (no_table)
      std::cerr << "mobsrv_bench: nothing to do — tables disabled by --no-table and kernel "
                   "timings need an explicit --benchmark_* flag with --only/--smoke\n";
    return 0;
  }

  // Forward only google-benchmark flags (it rejects unknown ones),
  // re-joining "--flag value" pairs into the "--flag=value" form it expects.
  std::vector<std::string> bench_flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) != 0) continue;
    std::string flag = argv[i];
    if (flag.find('=') == std::string::npos && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
      flag += std::string("=") + argv[++i];
    bench_flags.push_back(std::move(flag));
  }
  std::vector<char*> bench_argv{argv[0]};
  for (std::string& flag : bench_flags) bench_argv.push_back(flag.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
