/// \file main.cpp
/// The single experiment driver. Replaces the 14 standalone bench binaries.
///
///   mobsrv_bench --list                 # enumerate registered experiments
///   mobsrv_bench                        # run every experiment, full scale
///   mobsrv_bench --only=e01,e12         # run a subset, in the given order
///   mobsrv_bench --smoke                # fast end-to-end check (CI)
///   mobsrv_bench --trials=N --scale=F   # override sweep parameters
///   mobsrv_bench --seed=S               # reseed every RNG stream (default 0)
///   mobsrv_bench --threads=N            # worker threads (0 = hardware)
///   mobsrv_bench --json=out.json        # machine-readable results report
///   mobsrv_bench --record-dir=D         # snapshot one trace per sweep row
///   mobsrv_bench --record-codec=binary  # trace codec for --record-dir
///   mobsrv_bench --replay=D             # batch-replay a trace dir instead
///   mobsrv_bench --no-table             # skip reproduction tables
///   mobsrv_bench --no-bench             # skip google-benchmark timings
///   mobsrv_bench --benchmark_filter=... # forwarded to google-benchmark
///
/// Kernel timings are registered per translation unit, not per experiment,
/// so --only does not scope them; subset runs skip timings unless an
/// explicit --benchmark_* flag asks for them.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/mobsrv.hpp"
#include "io/cli.hpp"
#include "registry.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: mobsrv_bench [--list] [--only=e01,e05,...] [--trials=N] [--scale=F]\n"
        "                    [--seed=S] [--threads=N] [--json=PATH] [--record-dir=DIR]\n"
        "                    [--record-codec=jsonl|binary] [--replay=DIR]\n"
        "                    [--smoke] [--no-table] [--no-bench] [--benchmark_*...]\n"
        "With --only, kernel timings run only when a --benchmark_* flag is given\n"
        "(they are registered per binary and cannot be scoped to a selection).\n"
        "--replay runs the batch trace replayer over DIR instead of experiments.\n";
}

void print_list(std::ostream& os) {
  os << "registered experiments:\n";
  for (const mobsrv::bench::Experiment& e : mobsrv::bench::Registry::instance().experiments())
    os << "  " << e.id << "  " << e.title << "\n";
}

/// Writes the report to \p path; returns false (after printing) on failure.
/// Never throws — a JSON failure must exit 1 with a message, not terminate.
bool write_json(const std::string& path, const mobsrv::bench::Report& report) {
  try {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::cerr << "mobsrv_bench: cannot open --json path '" << path << "' for writing\n";
      return false;
    }
    out << report.to_json().dump() << "\n";
    out.flush();
    if (!out) {
      std::cerr << "mobsrv_bench: writing --json path '" << path << "' failed\n";
      return false;
    }
    return true;
  } catch (const std::exception& error) {
    std::cerr << "mobsrv_bench: serialising --json report failed: " << error.what() << "\n";
    return false;
  }
}

/// Replays a trace directory across the pool and prints a summary table.
int run_replay(const std::string& dir, mobsrv::par::ThreadPool& pool,
               mobsrv::bench::Report& report) {
  namespace trace = mobsrv::trace;
  const std::vector<std::filesystem::path> files = trace::list_trace_files(dir);
  trace::BatchOptions options;
  const trace::BatchResult result = trace::run_batch(pool, files, options);
  trace::print_batch_summary(std::cout, dir, result, options, pool.size());

  report.replay = trace::batch_to_json(result);
  if (result.replay_mismatches != 0) {
    std::cerr << "mobsrv_bench: " << result.replay_mismatches
              << " recorded runs did not replay bit-identically\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const mobsrv::io::Args args(argc, argv);

  // Reject typo'd flags and stray positionals up front — a silently ignored
  // `--smok` (or `smoke` without dashes) would run the full-scale sweeps
  // instead of the smoke subset.
  try {
    mobsrv::io::require_known_flags(args, {"list", "only", "trials", "scale", "smoke", "no-table",
                                           "no-bench", "seed", "json", "record-dir",
                                           "record-codec", "replay", "threads", "benchmark*"});
    mobsrv::io::require_no_positionals(args);
  } catch (const mobsrv::ContractViolation& error) {
    return mobsrv::io::usage_error("mobsrv_bench", error.what(), print_usage);
  }

  bool explicit_benchmark_flags = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) explicit_benchmark_flags = true;

  // Args getters throw ContractViolation on malformed values ("--trials=abc").
  bool no_table = false;
  bool run_kernels = false;
  unsigned threads = 0;  // 0 = hardware concurrency
  std::string json_path;
  std::string replay_dir;
  std::optional<mobsrv::trace::Recorder> recorder;
  mobsrv::bench::Options options;
  std::vector<mobsrv::bench::Experiment> selected;
  try {
    if (args.get_bool("help", false)) {
      print_usage(std::cout);
      return 0;
    }
    if (args.get_bool("list", false)) {
      print_list(std::cout);
      return 0;
    }

    const bool smoke = args.get_bool("smoke", false);
    options.trials = args.get_int("trials", smoke ? 2 : 6);
    options.scale = args.get_double("scale", smoke ? 0.05 : 1.0);
    options.seed = args.get_uint64("seed", 0);
    if (options.trials < 1) throw mobsrv::ContractViolation("flag --trials must be >= 1");
    if (options.scale <= 0.0) throw mobsrv::ContractViolation("flag --scale must be > 0");
    const int threads_flag = args.get_int("threads", 0);
    if (threads_flag < 0) throw mobsrv::ContractViolation("flag --threads must be >= 0");
    threads = static_cast<unsigned>(threads_flag);
    no_table = args.get_bool("no-table", false);
    json_path = args.get_string("json", "");
    replay_dir = args.get_string("replay", "");
    if (!replay_dir.empty() && args.has("record-dir"))
      throw mobsrv::ContractViolation(
          "--record-dir cannot be combined with --replay (replay never records)");
    if (args.has("record-codec") && !args.has("record-dir"))
      throw mobsrv::ContractViolation("--record-codec requires --record-dir");

    if (const std::string dir = args.get_string("record-dir", ""); !dir.empty()) {
      mobsrv::trace::RecorderOptions rec;
      rec.dir = dir;
      rec.codec = mobsrv::trace::codec_from_name(args.get_string("record-codec", "jsonl"));
      recorder.emplace(rec);
    }

    const std::vector<std::string> only_ids =
        mobsrv::bench::parse_only_list(args.get_string("only", ""));
    try {
      selected = mobsrv::bench::Registry::instance().select(only_ids);
    } catch (const mobsrv::ContractViolation& error) {
      return mobsrv::io::usage_error("mobsrv_bench", error.what(), print_list);
    }

    // Smoke runs are a table-level end-to-end check, and kernel timings
    // cannot be scoped to an --only subset; in both cases run them only on
    // explicit request.
    run_kernels = !args.get_bool("no-bench", false) && replay_dir.empty() &&
                  (explicit_benchmark_flags || (!smoke && only_ids.empty()));
  } catch (const mobsrv::ContractViolation& error) {
    return mobsrv::io::usage_error("mobsrv_bench", error.what(), print_usage);
  }

  mobsrv::bench::Report report;
  report.trials = options.trials;
  report.scale = options.scale;
  report.seed = options.seed;

  if (!replay_dir.empty()) {
    // --replay: batch-replay a recorded trace directory instead of running
    // the generator-backed experiments. The pool feeds the session
    // multiplexer, so --threads bounds the whole replay's parallelism.
    mobsrv::par::ThreadPool pool(threads);
    int status = 0;
    try {
      status = run_replay(replay_dir, pool, report);
    } catch (const std::exception& error) {
      std::cerr << "mobsrv_bench: replay failed: " << error.what() << "\n";
      return 1;
    }
    if (!json_path.empty() && !write_json(json_path, report)) return 1;
    return status;
  }

  if (!no_table) {
    mobsrv::par::ThreadPool pool(threads);
    options.pool = &pool;
    options.report = &report;
    options.recorder = recorder ? &*recorder : nullptr;
    for (const mobsrv::bench::Experiment& experiment : selected) {
      std::cout << "== " << experiment.id << " — " << experiment.title << " ==\n";
      report.begin_experiment(experiment.id, experiment.title);
      const auto start = std::chrono::steady_clock::now();
      try {
        experiment.run(options);
      } catch (const std::exception& error) {
        std::cerr << "mobsrv_bench: experiment " << experiment.id << " failed: " << error.what()
                  << "\n";
        return 1;
      }
      report.end_experiment(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
    }
    if (recorder) {
      // Recording hooks live in the ratio/shootout harnesses; experiments
      // that measure by hand (e.g. e09's lemma sampling) record nothing, so
      // say what actually landed on disk.
      std::cout << "recorded " << recorder->files_written() << " trace(s) to "
                << recorder->dir().string() << "\n";
      if (recorder->files_written() == 0)
        std::cerr << "mobsrv_bench: warning: --record-dir captured no traces — the selected "
                     "experiments do not use the ratio/shootout harness\n";
    }
  }

  if (!json_path.empty() && !write_json(json_path, report)) return 1;

  if (!run_kernels) {
    if (no_table)
      std::cerr << "mobsrv_bench: nothing to do — tables disabled by --no-table and kernel "
                   "timings need an explicit --benchmark_* flag with --only/--smoke\n";
    return 0;
  }

  // Forward only google-benchmark flags (it rejects unknown ones),
  // re-joining "--flag value" pairs into the "--flag=value" form it expects.
  std::vector<std::string> bench_flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) != 0) continue;
    std::string flag = argv[i];
    if (flag.find('=') == std::string::npos && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
      flag += std::string("=") + argv[++i];
    bench_flags.push_back(std::move(flag));
  }
  std::vector<char*> bench_argv{argv[0]};
  for (std::string& flag : bench_flags) bench_argv.push_back(flag.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
