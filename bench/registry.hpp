/// \file registry.hpp
/// Scenario registry for the experiment driver.
///
/// Each experiment translation unit self-registers an (id, title, runner)
/// triple via MOBSRV_BENCH_EXPERIMENT; the single `mobsrv_bench` binary
/// lists, selects (`--only=e01,e05`) and runs them. Registration order is
/// irrelevant — experiments() always returns ids sorted ascending, so the
/// driver's output order is stable regardless of link order.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace mobsrv::bench {

/// One self-registered experiment.
struct Experiment {
  std::string id;     ///< short selector, e.g. "e01"
  std::string title;  ///< one-line description shown by --list
  std::function<void(const Options&)> run;
};

/// Process-wide experiment table.
class Registry {
 public:
  /// The singleton used by MOBSRV_BENCH_EXPERIMENT.
  [[nodiscard]] static Registry& instance();

  /// Registers an experiment. Throws ContractViolation on a duplicate id.
  /// Returns true so registration can initialise a static.
  bool add(Experiment experiment);

  /// All experiments, sorted by id.
  [[nodiscard]] std::vector<Experiment> experiments() const;

  /// Experiments matching \p only_ids (all of them when the list is empty).
  /// Throws ContractViolation when an id in the list is not registered.
  [[nodiscard]] std::vector<Experiment> select(const std::vector<std::string>& only_ids) const;

 private:
  std::vector<Experiment> experiments_;
};

/// Splits a `--only` value ("e01,e05, e12") into trimmed, de-duplicated ids,
/// preserving first-occurrence order. Empty segments are dropped.
[[nodiscard]] std::vector<std::string> parse_only_list(const std::string& value);

}  // namespace mobsrv::bench

/// Defines and registers an experiment runner. Usage:
///
///   MOBSRV_BENCH_EXPERIMENT(e01, "Theorem 1: ...") {
///     ... body using `options` ...
///   }
#define MOBSRV_BENCH_EXPERIMENT(id, title)                                            \
  static void mobsrv_bench_run_##id(const ::mobsrv::bench::Options& options);         \
  [[maybe_unused]] static const bool mobsrv_bench_reg_##id =                          \
      ::mobsrv::bench::Registry::instance().add({#id, (title), &mobsrv_bench_run_##id}); \
  static void mobsrv_bench_run_##id(const ::mobsrv::bench::Options& options)
