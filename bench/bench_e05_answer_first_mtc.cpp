// E5 — Theorem 7: in the Answer-First variant, MtC (with augmentation) is
// O((1/δ^{3/2})·r/D)-competitive for fixed r >= D.
//
// Reproduction: the proof relates Answer-First cost to Move-First cost on
// the same sequence (factor <= 2·max(1, r/D)). We measure both orders on
// identical workloads: the Answer-First/Move-First cost quotient must stay
// below 2·max(1, r/D), and the Answer-First ratio against the (answer-first)
// DP must grow at most linearly in r/D and stay flat in T.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

sim::Instance hotspot(std::size_t horizon, std::size_t r, double d_weight, stats::Rng& rng) {
  adv::DriftingHotspotParams p;
  p.horizon = horizon;
  p.dim = 1;
  p.move_cost_weight = d_weight;
  p.r_min = r;
  p.r_max = r;
  return adv::make_drifting_hotspot(p, rng);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e05, "Theorem 7: MtC in the Answer-First variant") {
  std::cout << "# E5 — Theorem 7: MtC in the Answer-First variant\n"
            << "Claim: O((1/δ^{3/2})·r/D) for fixed r ≥ D; proof relates the two\n"
            << "service orders by a factor 2·max(1, r/D) on the same sequence.\n\n";

  const double delta = 0.5;
  const std::size_t horizon = options.horizon(1024);
  const double d_weight = 2.0;

  io::Table table("MtC: Answer-First vs Move-First on identical drifting-hotspot sequences",
                  {"r", "r/D", "AF ratio (vs AF DP)", "AF/MF cost quotient",
                   "Thm-7 factor 2·max(1,r/D)"});
  std::vector<double> r_over_d, af_ratios, quotients;
  for (const std::size_t r : {1u, 2u, 4u, 8u, 16u, 32u}) {
    stats::Summary af_ratio, quotient;
    for (int trial = 0; trial < options.trials; ++trial) {
      stats::Rng rng = options.rng("e05", {r, static_cast<std::uint64_t>(trial)});
      const sim::Instance mf_inst = hotspot(horizon, r, d_weight, rng);
      const sim::Instance af_inst = mf_inst.with_order(sim::ServiceOrder::kServeThenMove);

      alg::MoveToCenter mtc;
      sim::RunOptions run_opt;
      run_opt.speed_factor = 1.0 + delta;
      const double cost_mf = sim::run(mf_inst, mtc, run_opt).total_cost;
      const double cost_af = sim::run(af_inst, mtc, run_opt).total_cost;
      quotient.add(cost_af / cost_mf);

      const opt::GridDpResult dp = opt::solve_grid_dp_1d(af_inst);
      af_ratio.add(cost_af / dp.solution.cost);
    }
    const double factor = 2.0 * std::max(1.0, static_cast<double>(r) / d_weight);
    table.row()
        .cell(r)
        .cell(static_cast<double>(r) / d_weight, 3)
        .cell(mean_pm(af_ratio))
        .cell(mean_pm(quotient))
        .cell(factor, 3)
        .done();
    r_over_d.push_back(static_cast<double>(r) / d_weight);
    af_ratios.push_back(af_ratio.mean());
    quotients.push_back(quotient.mean());
  }
  options.emit(table);

  // Verdicts: quotient below the Theorem-7 factor everywhere; AF ratio
  // grows at most linearly in r/D (here it is in fact nearly flat because
  // the hotspot workload is far from the worst case).
  bool quotient_ok = true;
  double worst_excess = -1e300;  // worst (quotient − Thm-7 factor) over the sweep
  for (std::size_t i = 0; i < quotients.size(); ++i) {
    const double excess = quotients[i] - 2.0 * std::max(1.0, r_over_d[i]);
    worst_excess = std::max(worst_excess, excess);
    quotient_ok = quotient_ok && excess <= 0.2;
  }
  std::cout << "  bound[AF/MF quotient ≤ 2·max(1, r/D)]: "
            << (quotient_ok ? "PASS" : "CHECK") << "\n";
  record_check(options, "AF/MF quotient minus Thm-7 factor", worst_excess, -1e300, 0.2,
               quotient_ok);
  check_fit(options, "AF ratio vs r/D (claim at most linear)", r_over_d, af_ratios, -0.3, 1.1);

  // Flatness in T at fixed r.
  io::Table flat("Answer-First MtC ratio vs T (r = 4, D = 2, δ = 0.5)", {"T", "ratio"});
  std::vector<double> flat_ratios;
  for (const std::size_t base : {256u, 1024u, 4096u}) {
    const std::size_t h = options.horizon(base);
    stats::Summary ratio;
    for (int trial = 0; trial < options.trials; ++trial) {
      stats::Rng rng = options.rng("e05T", {h, static_cast<std::uint64_t>(trial)});
      const sim::Instance inst =
          hotspot(h, 4, d_weight, rng).with_order(sim::ServiceOrder::kServeThenMove);
      alg::MoveToCenter mtc;
      sim::RunOptions run_opt;
      run_opt.speed_factor = 1.0 + delta;
      const double cost = sim::run(inst, mtc, run_opt).total_cost;
      ratio.add(cost / opt::solve_grid_dp_1d(inst).solution.cost);
    }
    flat.row().cell(h).cell(mean_pm(ratio)).done();
    flat_ratios.push_back(ratio.mean());
  }
  options.emit(flat);
  check_flatness(options, "AF ratio vs T", flat_ratios, 1.6);
  std::cout << "\n";
}

namespace {

void BM_AnswerFirstDp(benchmark::State& state) {
  stats::Rng rng(1);
  adv::DriftingHotspotParams p;
  p.horizon = static_cast<std::size_t>(state.range(0));
  p.dim = 1;
  const sim::Instance inst =
      adv::make_drifting_hotspot(p, rng).with_order(sim::ServiceOrder::kServeThenMove);
  for (auto _ : state) benchmark::DoNotOptimize(opt::solve_grid_dp_1d(inst));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AnswerFirstDp)->Arg(256)->Arg(1024);

}  // namespace

}  // namespace mobsrv::bench
