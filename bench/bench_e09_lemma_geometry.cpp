// E9 — Lemmas 5 & 6 (and Figures 1–2): the geometric machinery of the
// competitive proof, verified by exhaustive random sampling.
//
// Reproduction: sample millions of configurations; report violation counts
// (must be zero) and the tightness margin distribution of Lemma 6. The
// google-benchmark section times the median solvers those lemmas are about.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

MOBSRV_BENCH_EXPERIMENT(e09, "Lemmas 5 & 6 / Figures 1 & 2: geometric proof machinery") {
  std::cout << "# E9 — Lemmas 5 & 6 / Figures 1 & 2: geometric proof machinery\n"
            << "Claim (L6): s2 ≤ √δ/(1+δ/2)·a2 ⇒ h−q ≥ (1+δ/2)/(1+δ)·a1.\n"
            << "Claim (L5): point-reduction loses ≤ factor 4+1; median optimality.\n\n"
            << "REPRODUCTION FINDING (L6): the literal statement admits hairline\n"
            << "violations (≤ ~1% of the bound) for obtuse placements of P'Opt with\n"
            << "a1 << a2 — the proof's right-angle reduction implicitly tightens the\n"
            << "premise. The amended bound (2% slack) and the end-to-end potential\n"
            << "inequality (E10) hold without exception. See core/audit.hpp.\n\n";

  const int samples = static_cast<int>(100000 * options.scale) + 1000;

  io::Table lemma6("Lemma 6 sampling (amended violations must be 0)",
                   {"dim", "delta", "samples", "literal violations", "amended violations",
                    "min margin", "median margin"});
  int amended_total = 0;
  for (const int dim : {1, 2, 3, 8}) {
    for (const double delta : {0.1, 0.5, 1.0}) {
      stats::Rng rng = options.rng(
          "e09-l6", {static_cast<std::uint64_t>(dim), static_cast<std::uint64_t>(delta * 1000)});
      int literal = 0, amended = 0;
      std::vector<double> margins;
      margins.reserve(static_cast<std::size_t>(samples));
      for (int i = 0; i < samples; ++i) {
        const core::Lemma6Sample s = core::sample_lemma6(dim, delta, rng);
        if (!s.holds(1e-7)) ++literal;
        if (!s.holds_amended(1e-7)) ++amended;
        margins.push_back(s.margin);
      }
      amended_total += amended;
      lemma6.row()
          .cell(dim)
          .cell(delta, 3)
          .cell(samples)
          .cell(literal)
          .cell(amended)
          .cell(stats::quantile(margins, 0.0), 3)
          .cell(stats::median_of(margins), 3)
          .done();
    }
  }
  options.emit(lemma6);
  std::cout << "  audit[amended Lemma 6, zero violations]: "
            << (amended_total == 0 ? "PASS" : "CHECK") << "\n";
  record_check(options, "amended Lemma 6 violations", amended_total, 0.0, 0.0,
               amended_total == 0);

  io::Table lemma5("Lemma 5 sampling (violations must be 0)",
                   {"dim", "r", "samples", "median-opt violations", "reduction violations",
                    "max r·d(o,c)/Σd(o,v)"});
  for (const int dim : {1, 2, 3}) {
    for (const std::size_t r : {2u, 5u, 9u}) {
      stats::Rng rng = options.rng("e09-l5", {static_cast<std::uint64_t>(dim), r});
      int bad_median = 0, bad_reduction = 0;
      double worst_quotient = 0.0;
      for (int i = 0; i < samples / 4; ++i) {
        const core::Lemma5Sample s = core::sample_lemma5(dim, r, 10.0, rng);
        if (!s.median_optimal()) ++bad_median;
        if (!s.reduction_holds()) ++bad_reduction;
        if (s.service_at_opt > 1e-12)
          worst_quotient = std::max(worst_quotient, s.simplified_opt / s.service_at_opt);
      }
      lemma5.row()
          .cell(dim)
          .cell(r)
          .cell(samples / 4)
          .cell(bad_median)
          .cell(bad_reduction)
          .cell(worst_quotient, 3)
          .done();
    }
  }
  options.emit(lemma5);
  std::cout << "  note: the worst observed quotient stays below the lemma's factor 4,\n"
            << "  and is near 2 — the paper's constant is loose, as expected.\n\n";
}

namespace {

void BM_Weiszfeld(benchmark::State& state) {
  stats::Rng rng(1);
  const auto r = static_cast<std::size_t>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  std::vector<geo::Point> pts;
  for (std::size_t i = 0; i < r; ++i) {
    geo::Point p(dim);
    for (int d = 0; d < dim; ++d) p[d] = rng.uniform(-5.0, 5.0);
    pts.push_back(p);
  }
  for (auto _ : state) benchmark::DoNotOptimize(med::weiszfeld(pts));
}
BENCHMARK(BM_Weiszfeld)->Args({3, 2})->Args({16, 2})->Args({128, 2})->Args({16, 8});

void BM_ClosestCenter1D(benchmark::State& state) {
  stats::Rng rng(2);
  const auto r = static_cast<std::size_t>(state.range(0));
  std::vector<geo::Point> pts;
  for (std::size_t i = 0; i < r; ++i) pts.push_back(geo::Point{rng.uniform(-5.0, 5.0)});
  const geo::Point anchor{0.0};
  for (auto _ : state) benchmark::DoNotOptimize(med::closest_center(pts, anchor));
}
BENCHMARK(BM_ClosestCenter1D)->Arg(2)->Arg(16)->Arg(128);

void BM_BruteForceMedian(benchmark::State& state) {
  stats::Rng rng(3);
  std::vector<geo::Point> pts;
  for (int i = 0; i < 16; ++i)
    pts.push_back(geo::Point{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)});
  for (auto _ : state)
    benchmark::DoNotOptimize(med::brute_force_median(pts, {}, 8, static_cast<int>(state.range(0))));
}
BENCHMARK(BM_BruteForceMedian)->Arg(4)->Arg(8);

}  // namespace

}  // namespace mobsrv::bench
