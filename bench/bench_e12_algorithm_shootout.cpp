// E12 — "who wins": MtC against the page-migration-derived baselines on
// the edge-computing workloads the paper's introduction motivates.
//
// Reproduction of the paper's qualitative claims: a damped chaser (MtC)
// beats both extremes — Lazy (never move) loses when demand drifts,
// GreedyCenter (always sprint) overpays movement on noise; and the
// crossover appears where predicted (static/unstructured demand → Lazy
// wins).
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::SampleFn make_workload(const std::string& name, std::size_t horizon) {
  if (name == "drifting-hotspot") {
    return [horizon](std::size_t, stats::Rng& rng) {
      adv::DriftingHotspotParams p;
      p.horizon = horizon;
      p.dim = 2;
      p.drift_speed = 0.6;
      return core::PreparedSample{adv::make_drifting_hotspot(p, rng), 0.0, {}};
    };
  }
  if (name == "commute") {
    return [horizon](std::size_t, stats::Rng& rng) {
      adv::CommuteParams p;
      p.horizon = horizon;
      p.site_distance = 24.0;
      p.period = 96;
      return core::PreparedSample{adv::make_commute(p, rng), 0.0, {}};
    };
  }
  if (name == "bursts") {
    return [horizon](std::size_t, stats::Rng& rng) {
      adv::BurstParams p;
      p.horizon = horizon;
      return core::PreparedSample{adv::make_bursts(p, rng), 0.0, {}};
    };
  }
  return [horizon](std::size_t, stats::Rng& rng) {
    adv::UniformNoiseParams p;
    p.horizon = horizon;
    return core::PreparedSample{adv::make_uniform_noise(p, rng), 0.0, {}};
  };
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e12, "algorithm shootout on edge-computing workloads") {
  std::cout << "# E12 — algorithm shootout on edge-computing workloads\n"
            << "All algorithms share each sampled instance and are scored against the\n"
            << "same feasible offline solution (convex descent), at δ = 0.5.\n\n";

  const std::vector<std::string> algorithms = alg::algorithm_names();
  for (const std::string workload :
       {"drifting-hotspot", "commute", "bursts", "uniform-noise"}) {
    core::RatioOptions opt = options.ratio_options("e12", {stats::hash_name(workload)});
    opt.speed_factor = 1.5;
    opt.oracle = core::OptOracle::kConvexDescent;
    const auto rows = core::shootout(*options.pool, algorithms,
                                     make_workload(workload, options.horizon(768)), opt);
    io::Table table("Workload: " + workload, {"algorithm", "mean cost", "ratio", "wins"});
    for (const auto& row : rows)
      table.row()
          .cell(row.name)
          .cell(row.cost.mean(), 5)
          .cell(mean_pm(row.ratio))
          .cell(row.wins)
          .done();
    options.emit(table);
  }
  std::cout << "  expected shape: MtC (or MoveToMin) wins the drifting/commute/burst\n"
            << "  workloads; Lazy wins uniform-noise where chasing is pure waste.\n\n";
}

namespace {

void BM_ShootoutStep(benchmark::State& state) {
  stats::Rng rng(1);
  adv::DriftingHotspotParams p;
  p.horizon = 512;
  const sim::Instance inst = adv::make_drifting_hotspot(p, rng);
  const auto algo = alg::make_algorithm(
      alg::algorithm_names()[static_cast<std::size_t>(state.range(0))], 1);
  sim::RunOptions opt;
  opt.speed_factor = 1.5;
  for (auto _ : state) benchmark::DoNotOptimize(sim::run(inst, *algo, opt));
  state.SetLabel(algo->name());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_ShootoutStep)->DenseRange(0, 4);

}  // namespace

}  // namespace mobsrv::bench
