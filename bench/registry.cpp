#include "registry.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mobsrv::bench {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

bool Registry::add(Experiment experiment) {
  for (const Experiment& existing : experiments_)
    if (existing.id == experiment.id)
      throw ContractViolation("duplicate experiment id: " + experiment.id);
  experiments_.push_back(std::move(experiment));
  return true;
}

std::vector<Experiment> Registry::experiments() const {
  std::vector<Experiment> sorted = experiments_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Experiment& a, const Experiment& b) { return a.id < b.id; });
  return sorted;
}

std::vector<Experiment> Registry::select(const std::vector<std::string>& only_ids) const {
  const std::vector<Experiment> all = experiments();
  if (only_ids.empty()) return all;
  std::vector<Experiment> selected;
  for (const std::string& id : only_ids) {
    const auto it = std::find_if(all.begin(), all.end(),
                                 [&id](const Experiment& e) { return e.id == id; });
    if (it == all.end()) throw ContractViolation("unknown experiment id: " + id);
    selected.push_back(*it);
  }
  return selected;
}

std::vector<std::string> parse_only_list(const std::string& value) {
  return io::split_list(value);
}

}  // namespace mobsrv::bench
