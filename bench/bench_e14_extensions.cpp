// E14 — ablations and the Section-6 extension.
//
// (a) MtC's damping exponent: the step rule min{1, (r/D)^γ}·d recovers
//     GreedyCenter at γ = 0 and MtC at γ = 1. Sweeping γ on a demand-drift
//     workload shows the paper's choice sits at/near the cost minimum.
// (b) Multiple mobile servers (the paper's open question): marginal value
//     of fleet size k on multi-hotspot demand — the costs drop steeply up
//     to k ≈ #hotspots, then flatten.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "algorithms/parametric.hpp"
#include "bench_common.hpp"
#include "registry.hpp"
#include "ext/multi_server.hpp"

namespace mobsrv::bench {

MOBSRV_BENCH_EXPERIMENT(e14, "ablations: MtC damping exponent; multi-server extension") {
  std::cout << "# E14 — ablations: MtC damping exponent; multi-server extension\n\n";

  // (a) damping ablation. γ = 1 is MtC's *worst-case* choice: heavier
  // damping (γ > 1) looks great on benign drift (it saves movement) but
  // gets burned by the Theorem-2 chase adversary, where a damped server
  // never closes the gap. The right score is therefore the MAX ratio across
  // benign and adversarial workloads — γ = 1 should (near-)minimise it.
  const std::size_t horizon = options.horizon(768);
  auto hotspot_ratio = [&](double gamma) {
    stats::Summary ratio;
    for (int trial = 0; trial < options.trials; ++trial) {
      stats::Rng rng = options.rng(
          "e14a-h", {static_cast<std::uint64_t>(gamma * 1000), static_cast<std::uint64_t>(trial)});
      adv::DriftingHotspotParams p;
      p.horizon = horizon;
      p.move_cost_weight = 8.0;
      p.r_min = 1;
      p.r_max = 2;
      p.drift_speed = 0.5;
      const sim::Instance inst = adv::make_drifting_hotspot(p, rng);
      alg::ParametricChaser chaser(gamma);
      sim::RunOptions run_opt;
      run_opt.speed_factor = 1.5;
      ratio.add(sim::run(inst, chaser, run_opt).total_cost /
                opt::solve_best_offline(inst).cost);
    }
    return ratio.mean();
  };
  auto adversarial_ratio = [&](double gamma) {
    stats::Summary ratio;
    for (int trial = 0; trial < options.trials; ++trial) {
      stats::Rng rng = options.rng(
          "e14a-a", {static_cast<std::uint64_t>(gamma * 1000), static_cast<std::uint64_t>(trial)});
      adv::Theorem2Params p;
      p.horizon = horizon;
      p.delta = 0.5;
      p.move_cost_weight = 8.0;
      const adv::AdversarialInstance a = adv::make_theorem2(p, rng);
      alg::ParametricChaser chaser(gamma);
      sim::RunOptions run_opt;
      run_opt.speed_factor = 1.5;
      ratio.add(sim::run(a.instance, chaser, run_opt).total_cost / a.adversary_cost);
    }
    return ratio.mean();
  };

  io::Table damping("Ablation (a): damping exponent γ — benign vs adversarial",
                    {"gamma", "hotspot ratio", "Thm-2 adversary ratio", "max (robust score)"});
  double best_max = 1e300, mtc_max = 0.0, best_gamma = -1.0;
  for (const double gamma : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double benign = hotspot_ratio(gamma);
    const double adversarial = adversarial_ratio(gamma);
    const double robust = std::max(benign, adversarial);
    damping.row()
        .cell(gamma, 3)
        .cell(benign, 4)
        .cell(adversarial, 4)
        .cell(robust, 4)
        .done();
    if (robust < best_max) {
      best_max = robust;
      best_gamma = gamma;
    }
    if (gamma == 1.0) mtc_max = robust;
  }
  options.emit(damping);
  std::cout << "  ablation[γ=1 (MtC) within 15% of the minimax damping]: best γ = "
            << io::format_double(best_gamma, 3) << ", MtC max-ratio / best max-ratio = "
            << io::format_double(mtc_max / best_max, 3) << " → "
            << (mtc_max <= best_max * 1.15 ? "PASS" : "CHECK") << "\n\n";
  record_check(options, "MtC max-ratio over minimax damping", mtc_max / best_max, 0.0, 1.15,
               mtc_max <= best_max * 1.15);

  // (b) fleet-size ablation.
  io::Table fleet("Extension (b): k mobile servers on 4 drifting hotspots",
                  {"servers k", "AssignAndChase cost", "Static cost", "chase/static"});
  std::vector<double> chase_costs;
  for (const int k : {1, 2, 4, 8, 16}) {
    stats::Summary chase_cost, static_cost;
    for (int trial = 0; trial < options.trials; ++trial) {
      stats::Rng rng = options.rng(
          "e14b", {static_cast<std::uint64_t>(k), static_cast<std::uint64_t>(trial)});
      ext::MultiHotspotParams p;
      p.horizon = options.horizon(512);
      p.clusters = 4;
      const sim::Instance inst = ext::make_multi_hotspot(p, rng);
      const auto starts = ext::spread_starts(inst, k, 10.0);
      ext::AssignAndChase chase;
      ext::StaticServers still;
      chase_cost.add(ext::run_multi(inst, starts, chase).total_cost);
      static_cost.add(ext::run_multi(inst, starts, still).total_cost);
    }
    fleet.row()
        .cell(k)
        .cell(chase_cost.mean(), 5)
        .cell(static_cost.mean(), 5)
        .cell(chase_cost.mean() / static_cost.mean(), 3)
        .done();
    chase_costs.push_back(chase_cost.mean());
  }
  options.emit(fleet);
  const double gain_1_to_4 = chase_costs[0] - chase_costs[2];
  const double gain_4_to_16 = chase_costs[2] - chase_costs[4];
  std::cout << "  shape[diminishing returns after k ≈ #hotspots]: gain(1→4) = "
            << io::format_double(gain_1_to_4, 4) << " vs gain(4→16) = "
            << io::format_double(gain_4_to_16, 4) << " → "
            << (gain_1_to_4 > gain_4_to_16 ? "PASS" : "CHECK") << "\n\n";
  record_check(options, "fleet gain(1→4) minus gain(4→16)", gain_1_to_4 - gain_4_to_16, 0.0,
               1e300, gain_1_to_4 > gain_4_to_16);
}

namespace {

void BM_MultiServerStep(benchmark::State& state) {
  stats::Rng rng(1);
  ext::MultiHotspotParams p;
  p.horizon = 512;
  p.clusters = 4;
  const sim::Instance inst = ext::make_multi_hotspot(p, rng);
  const auto starts = ext::spread_starts(inst, static_cast<int>(state.range(0)), 10.0);
  for (auto _ : state) {
    ext::AssignAndChase chase;
    benchmark::DoNotOptimize(ext::run_multi(inst, starts, chase));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_MultiServerStep)->Arg(1)->Arg(4)->Arg(16);

void BM_ParametricChaser(benchmark::State& state) {
  stats::Rng rng(1);
  adv::DriftingHotspotParams p;
  p.horizon = 1024;
  const sim::Instance inst = adv::make_drifting_hotspot(p, rng);
  alg::ParametricChaser chaser(static_cast<double>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(sim::run(inst, chaser));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ParametricChaser)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

}  // namespace mobsrv::bench
