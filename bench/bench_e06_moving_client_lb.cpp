// E6 — Theorem 8: Moving Client with a faster agent (m_a = (1+ε)·m_s) and
// no augmentation — ratio Ω(√T·ε/(1+ε)).
//
// Reproduction: MtC (which specialises to the paper's moving-client rule
// for r = 1) on the Theorem-8 trajectory; ratio grows ~√T and increases
// with ε.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::RatioEstimate measure(const Options& options, std::size_t horizon, double epsilon) {
  core::RatioOptions opt =
      options.ratio_options("e06", {horizon, static_cast<std::uint64_t>(epsilon * 1e6)});
  opt.speed_factor = 1.0;  // no augmentation — the regime of the theorem
  opt.oracle = core::OptOracle::kAdversaryCost;
  return core::estimate_ratio(
      *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
      [=](std::size_t, stats::Rng& rng) {
        adv::Theorem8Params p;
        p.horizon = horizon;
        p.epsilon = epsilon;
        adv::MovingClientAdversarial a = adv::make_theorem8(p, rng);
        return core::PreparedSample{sim::to_instance(a.mc), a.adversary_cost, {}};
      },
      opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e06, "Theorem 8: Moving Client lower bound Ω(√T·ε/(1+ε))") {
  std::cout << "# E6 — Theorem 8: Moving Client lower bound Ω(√T·ε/(1+ε))\n"
            << "Claim: a client moving at (1+ε)·m_s can lure a wrong-guessing server\n"
            << "√T·ε·m_s behind and outrun it forever; no augmentation, ratio grows with T.\n\n";

  io::Table table("MtC on the Theorem-8 agent (ratio = C_MtC / C_adversary)",
                  {"T", "epsilon", "ratio"});
  std::vector<double> horizons, ratios_eps1;
  double r_small = 0.0, r_large = 0.0;  // ratios at T = horizon(4096) for the mono check
  for (const double epsilon : {0.25, 0.5, 1.0}) {
    for (const std::size_t base : {1024u, 4096u, 16384u}) {
      const std::size_t horizon = options.horizon(base);
      const core::RatioEstimate est = measure(options, horizon, epsilon);
      table.row().cell(horizon).cell(epsilon, 3).cell(mean_pm(est.ratio)).done();
      if (epsilon == 1.0) {
        horizons.push_back(static_cast<double>(horizon));
        ratios_eps1.push_back(est.ratio.mean());
      }
      if (base == 4096u) {
        if (epsilon == 0.25) r_small = est.ratio.mean();
        if (epsilon == 1.0) r_large = est.ratio.mean();
      }
    }
  }
  options.emit(table);
  check_fit(options, "ratio vs T at ε=1 (claim √T ⇒ 0.5)", horizons, ratios_eps1, 0.3, 0.7);

  // Monotonicity in ε at fixed T (values captured from the sweep above).
  std::cout << "  mono[ratio increases with ε]: ratio(ε=0.25) = "
            << io::format_double(r_small, 3) << " < ratio(ε=1) = "
            << io::format_double(r_large, 3) << " → " << (r_small < r_large ? "PASS" : "CHECK")
            << "\n\n";
  record_check(options, "ratio(ε=1) minus ratio(ε=0.25)", r_large - r_small, 0.0, 1e300,
               r_small < r_large);
}

namespace {

void BM_Theorem8Generator(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(++seed);
    adv::Theorem8Params p;
    p.horizon = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(adv::make_theorem8(p, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Theorem8Generator)->Arg(4096)->Arg(16384);

}  // namespace

}  // namespace mobsrv::bench
