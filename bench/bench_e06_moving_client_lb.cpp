// E6 — Theorem 8: Moving Client with a faster agent (m_a = (1+ε)·m_s) and
// no augmentation — ratio Ω(√T·ε/(1+ε)).
//
// Reproduction: MtC (which specialises to the paper's moving-client rule
// for r = 1) on the Theorem-8 trajectory; ratio grows ~√T and increases
// with ε.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::RatioEstimate measure(par::ThreadPool& pool, std::size_t horizon, double epsilon,
                            int trials) {
  core::RatioOptions opt;
  opt.trials = trials;
  opt.speed_factor = 1.0;  // no augmentation — the regime of the theorem
  opt.oracle = core::OptOracle::kAdversaryCost;
  opt.seed_key = stats::mix_keys({stats::hash_name("e06"), horizon,
                                  static_cast<std::uint64_t>(epsilon * 1e6)});
  return core::estimate_ratio(
      pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
      [=](std::size_t, stats::Rng& rng) {
        adv::Theorem8Params p;
        p.horizon = horizon;
        p.epsilon = epsilon;
        adv::MovingClientAdversarial a = adv::make_theorem8(p, rng);
        return core::PreparedSample{sim::to_instance(a.mc), a.adversary_cost, {}};
      },
      opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e06, "Theorem 8: Moving Client lower bound Ω(√T·ε/(1+ε))") {
  std::cout << "# E6 — Theorem 8: Moving Client lower bound Ω(√T·ε/(1+ε))\n"
            << "Claim: a client moving at (1+ε)·m_s can lure a wrong-guessing server\n"
            << "√T·ε·m_s behind and outrun it forever; no augmentation, ratio grows with T.\n\n";

  io::Table table("MtC on the Theorem-8 agent (ratio = C_MtC / C_adversary)",
                  {"T", "epsilon", "ratio"});
  std::vector<double> horizons, ratios_eps1;
  for (const double epsilon : {0.25, 0.5, 1.0}) {
    for (const std::size_t base : {1024u, 4096u, 16384u}) {
      const std::size_t horizon = options.horizon(base);
      const core::RatioEstimate est = measure(*options.pool, horizon, epsilon, options.trials);
      table.row().cell(horizon).cell(epsilon, 3).cell(mean_pm(est.ratio)).done();
      if (epsilon == 1.0) {
        horizons.push_back(static_cast<double>(horizon));
        ratios_eps1.push_back(est.ratio.mean());
      }
    }
  }
  table.print(std::cout);
  print_fit("ratio vs T at ε=1 (claim √T ⇒ 0.5)", horizons, ratios_eps1, 0.3, 0.7);

  // Monotonicity in ε at fixed T.
  const std::size_t h = options.horizon(4096);
  const double r_small = measure(*options.pool, h, 0.25, options.trials).ratio.mean();
  const double r_large = measure(*options.pool, h, 1.0, options.trials).ratio.mean();
  std::cout << "  mono[ratio increases with ε]: ratio(ε=0.25) = "
            << io::format_double(r_small, 3) << " < ratio(ε=1) = "
            << io::format_double(r_large, 3) << " → " << (r_small < r_large ? "PASS" : "CHECK")
            << "\n\n";
}

namespace {

void BM_Theorem8Generator(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(++seed);
    adv::Theorem8Params p;
    p.horizon = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(adv::make_theorem8(p, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Theorem8Generator)->Arg(4096)->Arg(16384);

}  // namespace

}  // namespace mobsrv::bench
