// E4 — Theorem 4: MtC with (1+δ)m augmentation is O((1/δ)·Rmax/Rmin)-
// competitive on the line and O((1/δ^{3/2})·Rmax/Rmin) in the plane.
//
// Reproduction, four sweeps:
//   (a) ratio is FLAT in T (the whole point of augmentation) — measured
//       against the certified DP bracket on the line;
//   (b) ratio grows as δ ↓ 0 with exponent between 1 (line LB) and 3/2
//       (plane UB);
//   (c) ratio stays small and bounded across dimensions 1..3 on realistic
//       workloads;
//   (d) ratio grows at most linearly in Rmax/Rmin.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::SampleFn theorem2_sampler(std::size_t horizon, double delta, std::size_t r_min,
                                std::size_t r_max) {
  return [=](std::size_t, stats::Rng& rng) {
    adv::Theorem2Params p;
    p.horizon = horizon;
    p.delta = delta;
    p.r_min = r_min;
    p.r_max = r_max;
    adv::AdversarialInstance a = adv::make_theorem2(p, rng);
    return core::PreparedSample{std::move(a.instance), a.adversary_cost,
                                std::move(a.adversary_positions)};
  };
}

core::RatioEstimate measure(const Options& options, const core::SampleFn& sampler, double delta,
                            core::OptOracle oracle, std::string_view stream,
                            std::initializer_list<std::uint64_t> keys) {
  core::RatioOptions opt = options.ratio_options(stream, keys);
  opt.speed_factor = 1.0 + delta;
  opt.oracle = oracle;
  return core::estimate_ratio(
      *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); }, sampler, opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e04, "Theorem 4: MtC upper bounds under augmentation") {
  std::cout << "# E4 — Theorem 4: MtC upper bounds under augmentation\n"
            << "Claim: O((1/δ)·Rmax/Rmin) on the line, O((1/δ^{3/2})·Rmax/Rmin) in the\n"
            << "plane; in particular the ratio is independent of T.\n\n";

  // (a) Flat in T, with the certified bracket: ratio (vs feasible DP cost,
  // an under-estimate) and ratio_vs_lower (vs certified OPT lower bound, an
  // over-estimate) must BOTH stay flat.
  io::Table flat("Sweep (a): ratio vs T on the Theorem-2 adversary, δ = 0.5, line",
                 {"T", "ratio (vs DP upper)", "ratio (vs certified lower)"});
  std::vector<double> flat_upper, flat_lower;
  for (const std::size_t base : {512u, 1024u, 2048u, 4096u}) {
    const std::size_t horizon = options.horizon(base);
    const core::RatioEstimate est = measure(options, theorem2_sampler(horizon, 0.5, 1, 1), 0.5,
                                            core::OptOracle::kBestAvailable, "e04a", {horizon});
    flat.row()
        .cell(horizon)
        .cell(mean_pm(est.ratio))
        .cell(mean_pm(est.ratio_vs_lower))
        .done();
    flat_upper.push_back(est.ratio.mean());
    flat_lower.push_back(est.ratio_vs_lower.mean());
  }
  options.emit(flat);
  check_flatness(options, "ratio vs T (vs DP upper)", flat_upper, 1.6);
  check_flatness(options, "ratio vs T (vs certified lower)", flat_lower, 1.6);

  // (b) δ sweep on the adversary's own worst case.
  io::Table by_delta("Sweep (b): ratio vs δ on the Theorem-2 adversary (line)",
                     {"delta", "ratio"});
  std::vector<double> inv_delta, delta_ratios;
  const std::size_t horizon_b = options.horizon(4096);
  for (const double delta : {1.0, 0.5, 0.25, 0.125}) {
    const core::RatioEstimate est =
        measure(options, theorem2_sampler(horizon_b, delta, 1, 1), delta,
                core::OptOracle::kAdversaryCost, "e04b",
                {static_cast<std::uint64_t>(delta * 1e6)});
    by_delta.row().cell(delta, 4).cell(mean_pm(est.ratio)).done();
    inv_delta.push_back(1.0 / delta);
    delta_ratios.push_back(est.ratio.mean());
  }
  options.emit(by_delta);
  check_fit(options, "ratio vs 1/δ (claim: exponent in [1, 3/2])", inv_delta, delta_ratios, 0.75,
            1.6);

  // (c) Dimension sweep on a realistic workload with the convex oracle.
  io::Table by_dim("Sweep (c): drifting hotspot across dimensions (δ = 0.5, D = 4)",
                   {"dim", "ratio (vs best feasible offline)"});
  std::vector<double> dim_ratios;
  for (const int dim : {1, 2, 3}) {
    const std::size_t horizon = options.horizon(512);
    const core::RatioEstimate est = measure(
        options,
        [dim, horizon](std::size_t, stats::Rng& rng) {
          adv::DriftingHotspotParams p;
          p.horizon = horizon;
          p.dim = dim;
          return core::PreparedSample{adv::make_drifting_hotspot(p, rng), 0.0, {}};
        },
        0.5, core::OptOracle::kBestAvailable, "e04c", {static_cast<std::uint64_t>(dim)});
    by_dim.row().cell(dim).cell(mean_pm(est.ratio)).done();
    dim_ratios.push_back(est.ratio.mean());
  }
  options.emit(by_dim);
  check_flatness(options, "ratio vs dimension", dim_ratios, 2.0);

  // (d) Rmax/Rmin dependence, line, DP bracket.
  io::Table by_imbalance("Sweep (d): ratio vs Rmax/Rmin on the Theorem-2 adversary (δ=0.5)",
                         {"Rmax/Rmin", "ratio"});
  std::vector<double> imbalance, imbalance_ratios;
  const std::size_t horizon_d = options.horizon(2048);
  for (const std::size_t r_max : {1u, 4u, 16u}) {
    const core::RatioEstimate est = measure(options, theorem2_sampler(horizon_d, 0.5, 1, r_max),
                                            0.5, core::OptOracle::kAdversaryCost, "e04d", {r_max});
    by_imbalance.row().cell(r_max).cell(mean_pm(est.ratio)).done();
    imbalance.push_back(static_cast<double>(r_max));
    imbalance_ratios.push_back(est.ratio.mean());
  }
  options.emit(by_imbalance);
  check_fit(options, "ratio vs Rmax/Rmin (claim at most linear)", imbalance, imbalance_ratios, 0.5,
            1.2);
  std::cout << "\n";
}

namespace {

void BM_MtcDecide(benchmark::State& state) {
  stats::Rng rng(1);
  const auto r = static_cast<std::size_t>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  sim::ModelParams params;
  params.move_cost_weight = 4.0;
  sim::RequestBatch batch;
  for (std::size_t i = 0; i < r; ++i) {
    geo::Point v(dim);
    for (int d = 0; d < dim; ++d) v[d] = rng.uniform(-5.0, 5.0);
    batch.requests.push_back(v);
  }
  alg::MoveToCenter mtc;
  sim::StepView view;
  view.batch = batch;
  view.server = geo::Point::zero(dim);
  view.speed_limit = 1.5;
  view.params = &params;
  for (auto _ : state) benchmark::DoNotOptimize(mtc.decide(view));
}
BENCHMARK(BM_MtcDecide)->Args({1, 2})->Args({8, 2})->Args({64, 2})->Args({8, 8});

}  // namespace

}  // namespace mobsrv::bench
