#include "bench_common.hpp"

#include <iostream>

namespace mobsrv::bench {

void print_fit(const std::string& label, std::span<const double> x, std::span<const double> y,
               double expected_lo, double expected_hi) {
  const stats::LinearFit fit = stats::loglog_fit(x, y);
  const bool pass = fit.slope >= expected_lo && fit.slope <= expected_hi;
  std::cout << "  fit[" << label << "]: measured exponent " << io::format_double(fit.slope, 3)
            << " (stderr " << io::format_double(fit.slope_stderr, 2) << ", R² "
            << io::format_double(fit.r2, 3) << "); claim range [" << expected_lo << ", "
            << expected_hi << "] → " << (pass ? "PASS" : "CHECK") << "\n";
}

void print_flatness(const std::string& label, std::span<const double> y, double max_factor) {
  double lo = y[0], hi = y[0];
  for (const double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double factor = hi / lo;
  std::cout << "  flat[" << label << "]: max/min over sweep = " << io::format_double(factor, 3)
            << " (bound " << max_factor << ") → " << (factor <= max_factor ? "PASS" : "CHECK")
            << "\n";
}

std::string mean_pm(const stats::Summary& s, int digits) {
  return io::format_double(s.mean(), digits) + " ± " + io::format_double(s.stderr_mean(), 2);
}

}  // namespace mobsrv::bench
