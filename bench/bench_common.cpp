#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

namespace {

/// JSON cannot hold inf/NaN; degenerate sweeps (e.g. a zero minimum ratio
/// at smoke scale) must yield null, not a serialisation abort.
mobsrv::io::Json finite_or_null(double v) {
  return std::isfinite(v) ? mobsrv::io::Json(v) : mobsrv::io::Json(nullptr);
}

}  // namespace

namespace mobsrv::bench {

// ---------------------------------------------------------------------------
// Report.
// ---------------------------------------------------------------------------

void Report::begin_experiment(const std::string& id, const std::string& title) {
  ExperimentReport experiment;
  experiment.id = id;
  experiment.title = title;
  experiments_.push_back(std::move(experiment));
}

void Report::end_experiment(double seconds) {
  MOBSRV_CHECK_MSG(!experiments_.empty(), "end_experiment without begin_experiment");
  experiments_.back().seconds = seconds;
}

obs::Histogram* Report::current_trial_latency() {
  return experiments_.empty() ? nullptr : &experiments_.back().trial_latency;
}

void Report::add_table(const io::Table& table) {
  MOBSRV_CHECK_MSG(!experiments_.empty(), "add_table outside an experiment");
  experiments_.back().tables.push_back(table);
}

void Report::add_check(CheckResult check) {
  MOBSRV_CHECK_MSG(!experiments_.empty(), "add_check outside an experiment");
  experiments_.back().checks.push_back(std::move(check));
}

io::Json Report::to_json() const {
  io::Json root = io::Json::object();
  root.set("tool", "mobsrv_bench");
  root.set("format_version", 1);
  root.set("trials", trials);
  root.set("scale", scale);
  root.set("seed", seed);

  io::Json experiments = io::Json::array();
  for (const ExperimentReport& e : experiments_) {
    io::Json experiment = io::Json::object();
    experiment.set("id", e.id);
    experiment.set("title", e.title);
    experiment.set("seconds", e.seconds);
    if (!e.trial_latency.empty())
      experiment.set("trial_latency_ns", obs::summary_to_json(e.trial_latency.summary()));

    io::Json tables = io::Json::array();
    for (const io::Table& t : e.tables) {
      io::Json table = io::Json::object();
      table.set("title", t.title());
      io::Json columns = io::Json::array();
      for (const std::string& c : t.columns()) columns.push_back(c);
      table.set("columns", std::move(columns));
      io::Json rows = io::Json::array();
      for (std::size_t r = 0; r < t.num_rows(); ++r) {
        io::Json row = io::Json::array();
        for (std::size_t c = 0; c < t.num_columns(); ++c) row.push_back(t.at(r, c));
        rows.push_back(std::move(row));
      }
      table.set("rows", std::move(rows));
      tables.push_back(std::move(table));
    }
    experiment.set("tables", std::move(tables));

    io::Json checks = io::Json::array();
    for (const CheckResult& c : e.checks) {
      io::Json check = io::Json::object();
      check.set("kind", c.kind);
      check.set("label", c.label);
      check.set("measured", finite_or_null(c.measured));
      check.set("bound_lo", finite_or_null(c.bound_lo));
      check.set("bound_hi", finite_or_null(c.bound_hi));
      check.set("pass", c.pass);
      checks.push_back(std::move(check));
    }
    experiment.set("checks", std::move(checks));

    experiments.push_back(std::move(experiment));
  }
  root.set("experiments", std::move(experiments));
  if (replay) root.set("replay", *replay);
  return root;
}

// ---------------------------------------------------------------------------
// Options.
// ---------------------------------------------------------------------------

std::uint64_t Options::seed_key(std::string_view stream,
                                std::initializer_list<std::uint64_t> keys) const {
  std::uint64_t key = stats::mix_keys({seed, stats::hash_name(stream)});
  for (const std::uint64_t k : keys) key = stats::mix_keys({key, k});
  return key;
}

stats::Rng Options::rng(std::string_view stream, std::initializer_list<std::uint64_t> keys) const {
  return stats::Rng(seed_key(stream, keys));
}

core::RatioOptions Options::ratio_options(std::string_view stream,
                                          std::initializer_list<std::uint64_t> keys) const {
  core::RatioOptions opt;
  opt.trials = trials;
  opt.seed_key = seed_key(stream, keys);
  if (report != nullptr) opt.trial_latency = report->current_trial_latency();
  if (recorder != nullptr) {
    // Snapshot one representative run per sweep row (trial 0): the full
    // instance plus the observed engine run, replayable bit-identically.
    trace::Recorder* rec = recorder;
    std::string name(stream);
    const std::uint64_t row_key = opt.seed_key;
    opt.observe = [rec, name, row_key](const core::TrialObservation& obs) {
      if (obs.trial != 0) return;
      char key_hex[32];
      std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                    static_cast<unsigned long long>(row_key));
      trace::TraceFile file(trace::TraceMeta{name + "-" + key_hex, "mobsrv_bench", row_key},
                            obs.sample->instance);
      if (obs.sample->adversary_cost > 0.0)
        file.adversary =
            trace::AdversaryInfo{obs.sample->adversary_cost, obs.sample->adversary_positions};
      file.runs.push_back(trace::to_recorded_run(obs.algorithm->name(), obs.algo_seed,
                                                 obs.speed_factor, obs.policy, *obs.run));
      rec->write(file);
    };
  }
  return opt;
}

void Options::emit(const io::Table& table) const {
  table.print(std::cout);
  if (report != nullptr) report->add_table(table);
}

// ---------------------------------------------------------------------------
// Verdict helpers.
// ---------------------------------------------------------------------------

void check_fit(const Options& options, const std::string& label, std::span<const double> x,
               std::span<const double> y, double expected_lo, double expected_hi) {
  const stats::LinearFit fit = stats::loglog_fit(x, y);
  const bool pass = fit.slope >= expected_lo && fit.slope <= expected_hi;
  std::cout << "  fit[" << label << "]: measured exponent " << io::format_double(fit.slope, 3)
            << " (stderr " << io::format_double(fit.slope_stderr, 2) << ", R² "
            << io::format_double(fit.r2, 3) << "); claim range [" << expected_lo << ", "
            << expected_hi << "] → " << (pass ? "PASS" : "CHECK") << "\n";
  if (options.report != nullptr)
    options.report->add_check({"fit", label, fit.slope, expected_lo, expected_hi, pass});
}

void check_flatness(const Options& options, const std::string& label, std::span<const double> y,
                    double max_factor) {
  double lo = y[0], hi = y[0];
  for (const double v : y) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double factor = hi / lo;
  const bool pass = factor <= max_factor;
  std::cout << "  flat[" << label << "]: max/min over sweep = " << io::format_double(factor, 3)
            << " (bound " << max_factor << ") → " << (pass ? "PASS" : "CHECK") << "\n";
  if (options.report != nullptr)
    options.report->add_check({"flatness", label, factor, 1.0, max_factor, pass});
}

void record_check(const Options& options, const std::string& label, double measured,
                  double bound_lo, double bound_hi, bool pass) {
  if (options.report != nullptr)
    options.report->add_check({"bound", label, measured, bound_lo, bound_hi, pass});
}

std::string mean_pm(const stats::Summary& s, int digits) {
  return io::format_double(s.mean(), digits) + " ± " + io::format_double(s.stderr_mean(), 2);
}

}  // namespace mobsrv::bench
