/// \file bench_common.hpp
/// Shared option struct and helpers for the experiment scenarios.
///
/// Every experiment is a *reproduction artifact*: running it prints the
/// markdown table(s) for its experiment (the analogue of a table/figure in
/// the paper's evaluation, which this theory paper does not have), followed
/// by google-benchmark timings of the hot kernels. Experiments register
/// themselves in the scenario registry (see registry.hpp) and run through
/// the single `mobsrv_bench` driver binary.
#pragma once

#include <span>
#include <string>

#include "core/mobsrv.hpp"

namespace mobsrv::bench {

/// Options handed to each experiment's runner.
struct Options {
  int trials = 6;      ///< trials per sweep row
  double scale = 1.0;  ///< multiply default horizons (use < 1 for smoke runs)
  par::ThreadPool* pool = nullptr;  ///< never null inside an experiment runner

  [[nodiscard]] std::size_t horizon(std::size_t base) const {
    const auto h = static_cast<std::size_t>(static_cast<double>(base) * scale);
    return h < 16 ? 16 : h;
  }
};

/// Prints "fitted exponent" verdict line: fits y ~ x^p on log-log, compares
/// p against [expected_lo, expected_hi].
void print_fit(const std::string& label, std::span<const double> x, std::span<const double> y,
               double expected_lo, double expected_hi);

/// Prints a boundedness verdict: max(y)/min(y) across the sweep must stay
/// below `max_factor`.
void print_flatness(const std::string& label, std::span<const double> y, double max_factor);

/// Formats "mean ± stderr".
[[nodiscard]] std::string mean_pm(const stats::Summary& s, int digits = 3);

}  // namespace mobsrv::bench
