/// \file bench_common.hpp
/// Shared option struct, result report and helpers for the experiment
/// scenarios.
///
/// Every experiment is a *reproduction artifact*: running it prints the
/// markdown table(s) for its experiment (the analogue of a table/figure in
/// the paper's evaluation, which this theory paper does not have), followed
/// by google-benchmark timings of the hot kernels. Experiments register
/// themselves in the scenario registry (see registry.hpp) and run through
/// the single `mobsrv_bench` driver binary.
///
/// All per-experiment plumbing lives here so experiment files contain only
/// science: Options derives every RNG stream from the global --seed, emit()
/// both prints a table and captures it for --json, check_fit/check_flatness
/// print verdicts and record them, and ratio_options() wires the --record-dir
/// trace capture into the ratio harness.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/mobsrv.hpp"

namespace mobsrv::bench {

/// One PASS/CHECK verdict printed by an experiment.
struct CheckResult {
  std::string kind;   ///< "fit" or "flatness"
  std::string label;
  double measured = 0.0;
  double bound_lo = 0.0;
  double bound_hi = 0.0;
  bool pass = false;
};

/// Structured results of one driver invocation; serialised by --json. The
/// driver brackets each experiment with begin/end; emit()/check helpers
/// append to the current experiment.
class Report {
 public:
  void begin_experiment(const std::string& id, const std::string& title);
  void end_experiment(double seconds);

  void add_table(const io::Table& table);
  void add_check(CheckResult check);

  /// The current experiment's per-trial latency histogram (filled by the
  /// ratio harness via Options::ratio_options), or nullptr outside an
  /// experiment. Serialised as `trial_latency_ns` p50/p90/p99 in --json, so
  /// driver timings report percentiles, not just one wall-clock total.
  [[nodiscard]] obs::Histogram* current_trial_latency();

  /// Driver-level context echoed into the JSON root.
  int trials = 0;
  double scale = 1.0;
  std::uint64_t seed = 0;

  /// Replay summary (set by --replay), spliced into the root when present.
  std::optional<io::Json> replay;

  [[nodiscard]] io::Json to_json() const;

 private:
  struct ExperimentReport {
    std::string id;
    std::string title;
    double seconds = 0.0;
    obs::Histogram trial_latency;  ///< wall ns per ratio-harness trial
    std::vector<io::Table> tables;
    std::vector<CheckResult> checks;
  };
  std::vector<ExperimentReport> experiments_;
};

/// Options handed to each experiment's runner.
struct Options {
  int trials = 6;      ///< trials per sweep row
  double scale = 1.0;  ///< multiply default horizons (use < 1 for smoke runs)
  std::uint64_t seed = 0;  ///< global --seed; 0 is the default stream
  par::ThreadPool* pool = nullptr;      ///< never null inside an experiment runner
  Report* report = nullptr;             ///< never null inside an experiment runner
  trace::Recorder* recorder = nullptr;  ///< non-null iff --record-dir was given

  [[nodiscard]] std::size_t horizon(std::size_t base) const {
    const auto h = static_cast<std::size_t>(static_cast<double>(base) * scale);
    return h < 16 ? 16 : h;
  }

  /// Stable seed key for a named stream, derived from the global seed. Two
  /// runs with the same --seed produce identical keys (and therefore
  /// identical results); different --seed values decorrelate every stream.
  [[nodiscard]] std::uint64_t seed_key(std::string_view stream,
                                      std::initializer_list<std::uint64_t> keys = {}) const;

  /// A fresh generator for the named stream.
  [[nodiscard]] stats::Rng rng(std::string_view stream,
                               std::initializer_list<std::uint64_t> keys = {}) const;

  /// Ratio-harness options pre-wired with trials, the stream's seed key and
  /// (when recording) a trace-capture observer that snapshots trial 0 of
  /// this sweep row into the --record-dir.
  [[nodiscard]] core::RatioOptions ratio_options(
      std::string_view stream, std::initializer_list<std::uint64_t> keys = {}) const;

  /// Prints the table to stdout and captures it into the report.
  void emit(const io::Table& table) const;
};

/// Prints and records a "fitted exponent" verdict line: fits y ~ x^p on
/// log-log, compares p against [expected_lo, expected_hi].
void check_fit(const Options& options, const std::string& label, std::span<const double> x,
               std::span<const double> y, double expected_lo, double expected_hi);

/// Prints and records a boundedness verdict: max(y)/min(y) across the sweep
/// must stay below `max_factor`.
void check_flatness(const Options& options, const std::string& label, std::span<const double> y,
                    double max_factor);

/// Records a custom verdict into the report WITHOUT printing — for checks
/// whose console formatting doesn't fit check_fit/check_flatness. Keeps
/// --json complete: every printed PASS/CHECK must also land here.
void record_check(const Options& options, const std::string& label, double measured,
                  double bound_lo, double bound_hi, bool pass);

/// Formats "mean ± stderr".
[[nodiscard]] std::string mean_pm(const stats::Summary& s, int digits = 3);

}  // namespace mobsrv::bench
