/// \file perf_engine.cpp
/// Engine microbenchmarks: the `mobsrv_perf` binary.
///
/// Measures steps/second of the simulation core and pins the SoA refactor's
/// speedup to a number:
///   * engine/aos_baseline     — a frozen copy of the PRE-refactor inner loop
///                               (vector<RequestBatch> of 72-byte Points,
///                               Point-arithmetic service costs);
///   * engine/session_soa      — sim::Session streaming BatchViews over the
///                               flat RequestStore (the current hot path);
///   * engine/run_wrapper      — sim::run(), showing the wrapper adds nothing;
///   * mux/drain               — core::SessionMultiplexer throughput over
///                               many concurrent sessions;
///   * fleet/copy_baseline     — a frozen copy of the pre-redesign k-server
///                               loop (per-step servers-vector copy in the
///                               step view, decide() returning a fresh
///                               vector);
///   * fleet/session           — the unified fleet Session (span-based
///                               FleetStepView, in-place proposals): the
///                               k-server hot loop after the redesign.
///   * solver/descent_aos_baseline — a frozen copy of the PRE-refactor
///                               convex-descent offline solver (AoS
///                               vector<Point> trajectories, Point-temporary
///                               gradient math, fresh clamp/cost vectors per
///                               iteration);
///   * solver/descent_soa      — the same solve on flat TrajectoryStore
///                               buffers with dimension-specialized kernels
///                               and a zero-allocation iteration loop;
///   * solver/grid_dp          — the 1-D DP oracle (flat request scan,
///                               caller-owned service-cost scratch);
///   * serve/ingest            — the live-ingestion soak: an NDJSON script
///                               (opens, interleaved req frames, shutdown)
///                               pushed end-to-end through serve::Service —
///                               frame parsing, tenant routing, mux stepping
///                               and outcome emission all on the clock.
///   * obs/overhead            — the telemetry overhead gate: the same mux
///                               drain stepped one round at a time with
///                               per-round timing on (lean:0) and off
///                               (lean:1); the acceptance bar is lean:0
///                               within 2% of lean:1.
///   * serve/ingest_p99        — the ingest soak with full telemetry
///                               (lean=false); reports the accept->outcome
///                               ingest-latency p50/p99 from the service's
///                               own serve.ingest_latency_ns histogram.
///   * engine/step_latency     — sim::Session with the RunOptions
///                               step_latency hook attached: per-push wall
///                               time from the histogram the engine fills.
///   * mux/soak_1m_uniform     — a frozen copy of the pre-active-set
///                               scheduler at soak population (10^5 smoke,
///                               10^6 full; 1% hot): every round sweeps every
///                               open slot to find the few with work.
///   * mux/soak_1m_active      — the same soak on the intrusive ready list:
///                               parked slots cost nothing, rounds are
///                               O(active). Acceptance: >= 5x the uniform
///                               row's steps/sec. Also reports round-latency
///                               p50/p99 from a bench-side histogram.
///   * mux/soak_1m_ckpt        — the soak with incremental checkpoints: the
///                               dirty slots are encoded and mark_saved()
///                               every few rounds; ckpt_bytes is the encode
///                               throughput and dirty_per_save shows the
///                               save cost tracking progress, not population.
/// Each engine benchmark runs at dim 1, 2 and 8 so the dead-coordinate cost
/// of the AoS layout is visible: at dim 1 the old layout reads 72 bytes per
/// request for 8 useful ones. Solver benchmarks run at dim 1 and 2 (the
/// paper's embedding dimensions, where e11 lives); the acceptance bar for
/// the trajectory refactor is descent_soa/dim:1 >= 2x descent_aos_baseline.
///
///   mobsrv_perf                         # full measurement
///   mobsrv_perf --smoke                 # small workloads, short timings (CI)
///   mobsrv_perf --out=BENCH_perf.json   # also write google-benchmark JSON
///   mobsrv_perf --benchmark_filter=...  # forwarded to google-benchmark
///
/// The per-second `steps` counter is the comparison metric; the acceptance
/// bar for the refactor is session_soa/dim:1 >= 2x aos_baseline/dim:1.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/mobsrv.hpp"
#include "fault/injector.hpp"
#include "io/cli.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "serve/service.hpp"
#include "trace/checkpoint.hpp"

namespace {

using mobsrv::geo::Point;
namespace sim = mobsrv::sim;
namespace core = mobsrv::core;
namespace par = mobsrv::par;
namespace stats = mobsrv::stats;

// ---------------------------------------------------------------------------
// Frozen pre-refactor baseline. This reproduces the seed engine verbatim:
// AoS request storage, Point-temporary distance math in the service-cost
// accumulation, and virtual dispatch into the policy — so the comparison
// against sim::Session isolates the storage layout, not the harness.
// ---------------------------------------------------------------------------

struct AosWorkload {
  Point start;
  sim::ModelParams params;
  std::vector<sim::RequestBatch> steps;  // the old nested layout
};

struct AosPolicy {
  virtual ~AosPolicy() = default;
  virtual Point decide(const sim::RequestBatch& batch, const Point& server) = 0;
};

/// Never moves — the accounting loop dominates, which is what we measure.
struct AosLazy final : AosPolicy {
  Point decide(const sim::RequestBatch&, const Point& server) override { return server; }
};

double run_aos(const AosWorkload& workload, AosPolicy& policy) {
  const sim::ModelParams& params = workload.params;
  Point server = workload.start;
  double move_cost = 0.0, service_cost = 0.0;
  for (const sim::RequestBatch& batch : workload.steps) {
    const Point proposal = policy.decide(batch, server);
    move_cost += params.move_cost_weight * mobsrv::geo::distance(server, proposal);
    const Point& serve_from =
        params.order == sim::ServiceOrder::kMoveThenServe ? proposal : server;
    double s = 0.0;
    for (const auto& v : batch.requests) s += mobsrv::geo::distance(serve_from, v);
    service_cost += s;
    server = proposal;
  }
  return move_cost + service_cost;
}

// ---------------------------------------------------------------------------
// Shared workload generation (identical request streams for every variant).
// ---------------------------------------------------------------------------

AosWorkload make_workload(int dim, std::size_t horizon, std::size_t requests_per_step) {
  stats::Rng rng({0xBE7Cu, static_cast<std::uint64_t>(dim)});
  AosWorkload workload;
  workload.start = Point::zero(dim);
  workload.params.move_cost_weight = 4.0;
  workload.params.max_step = 1.0;
  workload.steps.resize(horizon);
  for (auto& step : workload.steps) {
    step.requests.reserve(requests_per_step);
    for (std::size_t i = 0; i < requests_per_step; ++i) {
      Point v(dim);
      for (int d = 0; d < dim; ++d) v[d] = rng.uniform(-10.0, 10.0);
      step.requests.push_back(v);
    }
  }
  return workload;
}

sim::Instance to_instance(const AosWorkload& workload) {
  return sim::Instance(workload.start, workload.params, workload.steps);
}

// ---------------------------------------------------------------------------
// Benchmarks. All report a per-second `steps` counter (engine rounds) and,
// for the engine loops, `requests` (distance evaluations).
// ---------------------------------------------------------------------------

struct Sizes {
  std::size_t horizon;
  std::size_t requests_per_step;
  std::size_t mux_sessions;
  std::size_t mux_horizon;
  std::size_t soak_sessions;
  std::size_t soak_horizon;
};

void set_throughput(benchmark::State& state, const Sizes& sizes) {
  const auto steps = static_cast<std::int64_t>(state.iterations() * sizes.horizon);
  state.counters["steps"] = benchmark::Counter(static_cast<double>(steps),
                                               benchmark::Counter::kIsRate);
  state.counters["requests"] = benchmark::Counter(
      static_cast<double>(steps) * static_cast<double>(sizes.requests_per_step),
      benchmark::Counter::kIsRate);
}

void BM_AosBaseline(benchmark::State& state, Sizes sizes) {
  const auto dim = static_cast<int>(state.range(0));
  const AosWorkload workload = make_workload(dim, sizes.horizon, sizes.requests_per_step);
  AosLazy lazy;
  for (auto _ : state) benchmark::DoNotOptimize(run_aos(workload, lazy));
  set_throughput(state, sizes);
}

void BM_SessionSoa(benchmark::State& state, Sizes sizes) {
  const auto dim = static_cast<int>(state.range(0));
  const sim::Instance instance =
      to_instance(make_workload(dim, sizes.horizon, sizes.requests_per_step));
  sim::RunOptions options;
  options.record_positions = false;  // a streaming tenant keeps no history
  for (auto _ : state) {
    mobsrv::alg::Lazy lazy;
    sim::Session session(instance.start(), instance.params(), lazy, options);
    for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
    benchmark::DoNotOptimize(session.total_cost());
  }
  set_throughput(state, sizes);
}

void BM_RunWrapper(benchmark::State& state, Sizes sizes) {
  const auto dim = static_cast<int>(state.range(0));
  const sim::Instance instance =
      to_instance(make_workload(dim, sizes.horizon, sizes.requests_per_step));
  for (auto _ : state) {
    mobsrv::alg::Lazy lazy;
    const sim::RunResult result = sim::run(instance, lazy);
    benchmark::DoNotOptimize(result.total_cost);
  }
  set_throughput(state, sizes);
}

void BM_MuxDrain(benchmark::State& state, Sizes sizes) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto workload = std::make_shared<const sim::Instance>(
      to_instance(make_workload(1, sizes.mux_horizon, 4)));
  par::ThreadPool pool(threads);
  for (auto _ : state) {
    core::SessionMultiplexer mux(pool);
    for (std::size_t s = 0; s < sizes.mux_sessions; ++s) {
      core::SessionSpec spec;
      spec.workload = workload;
      spec.algorithm = "Lazy";
      mux.add(std::move(spec));
    }
    mux.drain();
    benchmark::DoNotOptimize(mux.totals().total_cost);
  }
  const auto steps =
      static_cast<double>(state.iterations() * sizes.mux_sessions * sizes.mux_horizon);
  state.counters["steps"] = benchmark::Counter(steps, benchmark::Counter::kIsRate);
  state.counters["sessions"] = static_cast<double>(sizes.mux_sessions);
}

// ---------------------------------------------------------------------------
// Fleet engine: frozen pre-redesign loop vs the unified fleet Session.
// The baseline reproduces the seed ext::run_multi engine verbatim — its step
// view OWNED a std::vector<Point> copy of the fleet and decide() returned a
// fresh vector, so every step paid two O(k) allocations/copies before any
// real work. The redesigned engine hands out spans and writes proposals in
// place; a parked fleet isolates exactly that overhead.
// ---------------------------------------------------------------------------

struct FrozenFleetView {
  std::size_t t = 0;
  sim::BatchView batch;
  std::vector<Point> servers;  // the old copying layout
  double speed_limit = 0.0;
  const sim::ModelParams* params = nullptr;
};

struct FrozenFleetPolicy {
  virtual ~FrozenFleetPolicy() = default;
  virtual std::vector<Point> decide(const FrozenFleetView& view) = 0;
};

struct FrozenFleetStatic final : FrozenFleetPolicy {
  std::vector<Point> decide(const FrozenFleetView& view) override { return view.servers; }
};

double run_frozen_fleet(const sim::Instance& instance, std::vector<Point> starts,
                        FrozenFleetPolicy& policy) {
  const sim::ModelParams& params = instance.params();
  const double limit = params.max_step;
  std::vector<Point> servers = std::move(starts);
  double move_cost = 0.0, service_cost = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    FrozenFleetView view;
    view.t = t;
    view.batch = instance.step(t);
    view.servers = servers;  // the per-step copy the redesign removed
    view.speed_limit = limit;
    view.params = &params;
    std::vector<Point> proposals = policy.decide(view);
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const Point next = mobsrv::geo::move_toward(servers[i], proposals[i], limit);
      move_cost += params.move_cost_weight * mobsrv::geo::distance(servers[i], next);
      servers[i] = next;
    }
    service_cost += mobsrv::sim::nearest_service_cost({servers.data(), servers.size()},
                                                      instance.step(t));
  }
  return move_cost + service_cost;
}

std::vector<Point> fleet_starts(const sim::Instance& instance, int k) {
  std::vector<Point> starts;
  starts.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    Point p = instance.start();
    p[0] += static_cast<double>(i);
    starts.push_back(p);
  }
  return starts;
}

void BM_FleetCopyBaseline(benchmark::State& state, Sizes sizes) {
  const auto k = static_cast<int>(state.range(0));
  const sim::Instance instance =
      to_instance(make_workload(2, sizes.horizon, sizes.requests_per_step));
  const std::vector<Point> starts = fleet_starts(instance, k);
  FrozenFleetStatic parked;
  for (auto _ : state)
    benchmark::DoNotOptimize(run_frozen_fleet(instance, starts, parked));
  set_throughput(state, sizes);
}

void BM_FleetSession(benchmark::State& state, Sizes sizes) {
  const auto k = static_cast<int>(state.range(0));
  const sim::Instance instance =
      to_instance(make_workload(2, sizes.horizon, sizes.requests_per_step));
  const std::vector<Point> starts = fleet_starts(instance, k);
  sim::RunOptions options;
  options.policy = sim::SpeedLimitPolicy::kClamp;
  options.record_positions = false;
  for (auto _ : state) {
    mobsrv::ext::StaticServers parked;
    sim::Session session(starts, instance.params(), parked, options);
    for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
    benchmark::DoNotOptimize(session.total_cost());
  }
  set_throughput(state, sizes);
}

// ---------------------------------------------------------------------------
// Offline solver: frozen pre-refactor convex descent vs the flat-buffer
// solver. The baseline reproduces the seed solver verbatim — trajectories as
// vector<Point> (72 bytes/position), Point-temporary arithmetic in the
// gradient/projection loops, and a fresh clamp vector + cost pass allocated
// every iteration — so the comparison isolates the trajectory storage
// refactor, not solver logic: both sides run the identical operation
// sequence (including the final reachability_lower_bound pass).
// tests/test_offline_parity.cpp freezes this same pre-refactor
// implementation and asserts the library solver reproduces it bit-
// identically.
// ---------------------------------------------------------------------------

namespace frozen_descent {

namespace med = mobsrv::med;
namespace opt = mobsrv::opt;
namespace geo = mobsrv::geo;

std::size_t serve_index(const sim::ModelParams& params, std::size_t t) {
  return params.order == sim::ServiceOrder::kMoveThenServe ? t + 1 : t;
}

std::vector<Point> chase_init(const sim::Instance& instance, bool damped) {
  std::vector<Point> x;
  x.reserve(instance.horizon() + 1);
  x.push_back(instance.start());
  const double m = instance.params().max_step;
  const double D = instance.params().move_cost_weight;
  std::vector<Point> reqs;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const sim::BatchView batch = instance.step(t);
    if (batch.empty()) {
      x.push_back(x.back());
      continue;
    }
    batch.copy_to(reqs);
    const Point center = med::closest_center(reqs, x.back());
    double step = m;
    if (damped) {
      const double dist = geo::distance(x.back(), center);
      step = std::min(m, dist * std::min(1.0, static_cast<double>(reqs.size()) / D));
    }
    x.push_back(geo::move_toward(x.back(), center, step));
  }
  return x;
}

std::vector<Point> forward_clamp(const sim::Instance& instance, const std::vector<Point>& x) {
  std::vector<Point> y(x.size());
  y[0] = instance.start();
  const double m = instance.params().max_step;
  for (std::size_t t = 0; t + 1 < x.size(); ++t) y[t + 1] = geo::move_toward(y[t], x[t + 1], m);
  return y;
}

Point smooth_norm_grad(const Point& u, double mu) {
  return u / std::sqrt(u.norm2() + mu * mu);
}

void gradient(const sim::Instance& instance, const std::vector<Point>& x, double mu,
              std::vector<Point>& grad) {
  const auto& params = instance.params();
  const double D = params.move_cost_weight;
  for (auto& g : grad) g = Point::zero(instance.dim());

  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const Point move_grad = smooth_norm_grad(x[t + 1] - x[t], mu) * D;
    grad[t + 1] += move_grad;
    if (t > 0) grad[t] -= move_grad;

    const std::size_t s = serve_index(params, t);
    if (s == 0) continue;
    for (const Point v : instance.step(t)) grad[s] += smooth_norm_grad(x[s] - v, mu);
  }
}

void projection_sweeps(std::vector<Point>& x, double m, int sweeps) {
  const std::size_t n = x.size();
  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t t = 0; t + 1 < n; ++t) {
      const double d = geo::distance(x[t], x[t + 1]);
      if (d <= m || d == 0.0) continue;
      const double excess = d - m;
      const Point dir = (x[t + 1] - x[t]) / d;
      if (t == 0) {
        x[t + 1] -= dir * excess;
      } else {
        x[t] += dir * (excess / 2.0);
        x[t + 1] -= dir * (excess / 2.0);
      }
    }
  }
}

double solve(const sim::Instance& instance, const opt::ConvexDescentOptions& options) {
  const double m = instance.params().max_step;
  const double mu = options.smoothing * m;

  double best_cost = 0.0;
  std::vector<Point> best_positions;
  if (instance.horizon() == 0) return 0.0;

  std::vector<std::vector<Point>> candidates;
  candidates.push_back(chase_init(instance, /*damped=*/false));
  candidates.push_back(chase_init(instance, /*damped=*/true));

  std::vector<Point> x;
  best_cost = std::numeric_limits<double>::infinity();
  for (auto& candidate : candidates) {
    std::vector<Point> feasible = forward_clamp(instance, candidate);
    const double cost =
        sim::trajectory_cost(instance, std::span<const Point>(feasible));
    if (cost < best_cost) {
      best_cost = cost;
      best_positions = std::move(feasible);
      x = std::move(candidate);
    }
  }

  const double r_max = static_cast<double>(instance.request_bounds().second);
  const double lipschitz = 2.0 * instance.params().move_cost_weight + r_max;

  std::vector<Point> grad(x.size(), Point::zero(instance.dim()));
  for (int k = 0; k < options.iterations; ++k) {
    gradient(instance, x, mu, grad);
    const double step =
        options.initial_step * m / (lipschitz * std::sqrt(static_cast<double>(k) + 1.0));
    for (std::size_t t = 1; t < x.size(); ++t) x[t] -= grad[t] * step;
    projection_sweeps(x, m, options.projection_sweeps);
    std::vector<Point> candidate = forward_clamp(instance, x);
    const double cost =
        sim::trajectory_cost(instance, std::span<const Point>(candidate));
    if (cost < best_cost) {
      best_cost = cost;
      best_positions = std::move(candidate);
    }
  }
  // The production solver ends every solve with this pass; charge it here
  // too so the benchmarked work is identical on both sides.
  benchmark::DoNotOptimize(opt::reachability_lower_bound(instance));
  return best_cost;
}

}  // namespace frozen_descent

/// Descent iterations per solve: enough for the step schedule and
/// improvement bookkeeping to matter, small enough that one solve is a
/// reasonable benchmark iteration at e11 scale (T = 512).
constexpr int kDescentIterations = 40;

void set_solver_throughput(benchmark::State& state, const Sizes& sizes, int iters_per_solve) {
  const auto steps = static_cast<std::int64_t>(state.iterations()) *
                     static_cast<std::int64_t>(sizes.horizon) *
                     static_cast<std::int64_t>(iters_per_solve);
  state.counters["steps"] = benchmark::Counter(static_cast<double>(steps),
                                               benchmark::Counter::kIsRate);
  state.counters["requests"] = benchmark::Counter(
      static_cast<double>(steps) * static_cast<double>(sizes.requests_per_step),
      benchmark::Counter::kIsRate);
}

void BM_DescentAosBaseline(benchmark::State& state, Sizes sizes) {
  const auto dim = static_cast<int>(state.range(0));
  const sim::Instance instance =
      to_instance(make_workload(dim, sizes.horizon, sizes.requests_per_step));
  mobsrv::opt::ConvexDescentOptions options;
  options.iterations = kDescentIterations;
  for (auto _ : state) benchmark::DoNotOptimize(frozen_descent::solve(instance, options));
  set_solver_throughput(state, sizes, kDescentIterations);
}

void BM_DescentSoa(benchmark::State& state, Sizes sizes) {
  const auto dim = static_cast<int>(state.range(0));
  const sim::Instance instance =
      to_instance(make_workload(dim, sizes.horizon, sizes.requests_per_step));
  mobsrv::opt::ConvexDescentOptions options;
  options.iterations = kDescentIterations;
  for (auto _ : state)
    benchmark::DoNotOptimize(mobsrv::opt::solve_convex_descent(instance, options).cost);
  set_solver_throughput(state, sizes, kDescentIterations);
}

void BM_GridDp(benchmark::State& state, Sizes sizes) {
  const sim::Instance instance =
      to_instance(make_workload(1, sizes.horizon, sizes.requests_per_step));
  for (auto _ : state)
    benchmark::DoNotOptimize(mobsrv::opt::solve_grid_dp_1d(instance).solution.cost);
  const auto steps = static_cast<std::int64_t>(state.iterations() * sizes.horizon);
  state.counters["steps"] = benchmark::Counter(static_cast<double>(steps),
                                               benchmark::Counter::kIsRate);
}

// ---------------------------------------------------------------------------
// Service soak: the whole mobsrv_serve data path on the clock. One NDJSON
// script — tenant opens, interleaved req frames, shutdown — is built once;
// each iteration feeds it through a fresh serve::Service, so the measurement
// covers frame parsing, admission, per-tenant routing, mux stepping and
// outcome-frame emission end to end. Lean output keeps positions off the
// wire, matching a high-throughput deployment.
// ---------------------------------------------------------------------------

std::string make_ingest_script(std::size_t tenants, std::size_t steps_per_tenant, int dim) {
  stats::Rng rng({0x5E47Eu, static_cast<std::uint64_t>(dim)});
  std::ostringstream out;
  for (std::size_t s = 0; s < tenants; ++s)
    out << R"({"type":"open","v":1,"tenant":"t)" << s
        << R"(","algorithm":"Lazy","dim":)" << dim << R"(,"speed":1.5})" << '\n';
  for (std::size_t t = 0; t < steps_per_tenant; ++t) {
    for (std::size_t s = 0; s < tenants; ++s) {
      out << R"({"type":"req","tenant":"t)" << s << R"(","batch":[)";
      for (std::size_t r = 0; r < 4; ++r) {
        if (r > 0) out << ',';
        out << '[';
        for (int d = 0; d < dim; ++d) {
          if (d > 0) out << ',';
          out << rng.uniform(-10.0, 10.0);
        }
        out << ']';
      }
      out << "]}\n";
    }
  }
  out << R"({"type":"shutdown"})" << '\n';
  return out.str();
}

void BM_ServeIngest(benchmark::State& state, Sizes sizes) {
  const auto tenants = static_cast<std::size_t>(state.range(0));
  const std::string script = make_ingest_script(tenants, sizes.mux_horizon, 2);
  std::uint64_t frames = 0;
  for (auto _ : state) {
    mobsrv::serve::ServiceOptions options;
    options.lean = true;
    mobsrv::serve::Service service(std::move(options));
    std::istringstream in(script);
    std::ostringstream out;
    const mobsrv::serve::ExitReason reason = service.run(in, out);
    if (reason != mobsrv::serve::ExitReason::kShutdown) state.SkipWithError("bad exit");
    frames += service.lines_seen();
    benchmark::DoNotOptimize(out.str().size());
  }
  const auto steps =
      static_cast<double>(state.iterations() * tenants * sizes.mux_horizon);
  state.counters["steps"] = benchmark::Counter(steps, benchmark::Counter::kIsRate);
  state.counters["frames"] =
      benchmark::Counter(static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["tenants"] = static_cast<double>(tenants);
}

// ---------------------------------------------------------------------------
// Telemetry rows (PR 7). obs/overhead is the 2% gate behind --lean's
// contract: the identical single-round drain with the per-round clock reads
// on (lean:0) and off (lean:1). Stepping one round at a time maximises the
// relative cost of the two obs::now_ns() calls per round, so the gate is
// conservative. serve/ingest_p99 and engine/step_latency reuse the
// obs::Histogram machinery the service itself runs, so the percentiles in
// BENCH_perf.json come from the production code path, not a bench-side
// timer.
// ---------------------------------------------------------------------------

void BM_ObsOverhead(benchmark::State& state, Sizes sizes) {
  const bool lean = state.range(0) != 0;
  const auto workload = std::make_shared<const sim::Instance>(
      to_instance(make_workload(1, sizes.mux_horizon, 4)));
  par::ThreadPool pool(1);
  for (auto _ : state) {
    core::SessionMultiplexer mux(pool);
    mux.set_timing_enabled(!lean);
    for (std::size_t s = 0; s < sizes.mux_sessions; ++s) {
      core::SessionSpec spec;
      spec.workload = workload;
      spec.algorithm = "Lazy";
      mux.add(std::move(spec));
    }
    while (mux.step(1) > 0) {
    }
    benchmark::DoNotOptimize(mux.totals().total_cost);
  }
  const auto steps =
      static_cast<double>(state.iterations() * sizes.mux_sessions * sizes.mux_horizon);
  state.counters["steps"] = benchmark::Counter(steps, benchmark::Counter::kIsRate);
  state.counters["sessions"] = static_cast<double>(sizes.mux_sessions);
}

void BM_ServeIngestP99(benchmark::State& state, Sizes sizes) {
  const auto tenants = static_cast<std::size_t>(state.range(0));
  const std::string script = make_ingest_script(tenants, sizes.mux_horizon, 2);
  mobsrv::obs::Histogram ingest;
  for (auto _ : state) {
    mobsrv::serve::ServiceOptions options;
    options.lean = false;  // full telemetry: the clocked ingest path
    mobsrv::serve::Service service(std::move(options));
    std::istringstream in(script);
    std::ostringstream out;
    const mobsrv::serve::ExitReason reason = service.run(in, out);
    if (reason != mobsrv::serve::ExitReason::kShutdown) state.SkipWithError("bad exit");
    ingest.merge(service.telemetry().ingest_latency);
    benchmark::DoNotOptimize(out.str().size());
  }
  const auto steps =
      static_cast<double>(state.iterations() * tenants * sizes.mux_horizon);
  state.counters["steps"] = benchmark::Counter(steps, benchmark::Counter::kIsRate);
  const mobsrv::obs::HistogramSummary summary = ingest.summary();
  state.counters["p50_ns"] = static_cast<double>(summary.p50);
  state.counters["p99_ns"] = static_cast<double>(summary.p99);
  state.counters["tenants"] = static_cast<double>(tenants);
}

// The PR 10 gate: the fault hooks on the serve hot path (serve.read per
// input line, tenant.step per pump round, plus the persistence sites) must
// be free when no injector is armed. armed:0 runs with options.faults ==
// nullptr (the production default — one pointer test per site); armed:1
// wires an injector holding a rule that can never fire, so every hit pays
// the site lookup and rule walk. perf_diff.py pins armed:0 against the
// committed baseline; the armed:1 row documents the worst-case hook cost.
void BM_FaultHookOverhead(benchmark::State& state, Sizes sizes) {
  const bool armed = state.range(0) != 0;
  constexpr std::size_t kTenants = 8;
  const std::string script = make_ingest_script(kTenants, sizes.mux_horizon, 2);
  mobsrv::fault::Injector injector;
  if (armed) {
    mobsrv::fault::SiteRule rule;
    rule.site = mobsrv::fault::kSiteServeRead;
    rule.nth = std::numeric_limits<std::uint64_t>::max();  // inert: never fires
    injector.add_rule(rule);
  }
  for (auto _ : state) {
    mobsrv::serve::ServiceOptions options;
    options.lean = true;
    options.faults = armed ? &injector : nullptr;
    mobsrv::serve::Service service(std::move(options));
    std::istringstream in(script);
    std::ostringstream out;
    const mobsrv::serve::ExitReason reason = service.run(in, out);
    if (reason != mobsrv::serve::ExitReason::kShutdown) state.SkipWithError("bad exit");
    benchmark::DoNotOptimize(out.str().size());
  }
  const auto steps = static_cast<double>(state.iterations() * kTenants * sizes.mux_horizon);
  state.counters["steps"] = benchmark::Counter(steps, benchmark::Counter::kIsRate);
  state.counters["armed"] = armed ? 1.0 : 0.0;
}

void BM_EngineStepLatency(benchmark::State& state, Sizes sizes) {
  const sim::Instance instance =
      to_instance(make_workload(1, sizes.horizon, sizes.requests_per_step));
  mobsrv::obs::Histogram latency;
  sim::RunOptions options;
  options.record_positions = false;
  options.step_latency = &latency;
  for (auto _ : state) {
    mobsrv::alg::Lazy lazy;
    sim::Session session(instance.start(), instance.params(), lazy, options);
    for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
    benchmark::DoNotOptimize(session.total_cost());
  }
  set_throughput(state, sizes);
  const mobsrv::obs::HistogramSummary summary = latency.summary();
  state.counters["p50_ns"] = static_cast<double>(summary.p50);
  state.counters["p99_ns"] = static_cast<double>(summary.p99);
}

// ---------------------------------------------------------------------------
// Million-session soak (PR 8): sparse activity at population scale. One slot
// in a hundred is hot (soak_horizon pending steps); the other 99% sit open
// with nothing queued — the shape of a live multiplexer where most tenants
// are idle between bursts. Session construction is excluded from the clock
// (PauseTiming) so the rows compare scheduling, not setup.
// ---------------------------------------------------------------------------

constexpr std::size_t kSoakHotStride = 100;  // 1% of the population is hot
constexpr std::size_t kSoakSaveEvery = 32;   // rounds between incremental saves

struct SoakSources {
  AosWorkload hot;
  AosWorkload cold;
};

SoakSources make_soak_sources(std::size_t horizon) {
  // Hot sessions carry the whole soak horizon; cold ones are open with
  // nothing queued — a live multiplexer's idle tenants between bursts.
  // Single-request dim-1 steps keep the per-step engine work small, so the
  // rows measure the scheduler's visit cost, not distance arithmetic.
  return {make_workload(1, horizon, 1), make_workload(1, 0, 1)};
}

/// Every tenant owns its workload object, as in the live service — the
/// sweep's horizon check dereferences per-slot memory, exactly what the
/// pre-refactor scheduler paid on every visit.
std::shared_ptr<const sim::Instance> soak_instance(const SoakSources& sources, std::size_t s) {
  return std::make_shared<const sim::Instance>(
      to_instance(s % kSoakHotStride == 0 ? sources.hot : sources.cold));
}

std::size_t soak_steps(const Sizes& sizes) {
  return (sizes.soak_sessions / kSoakHotStride) * sizes.soak_horizon;
}

/// Frozen copy of the pre-refactor scheduler slot: the seed multiplexer kept
/// one of these per session — the full SessionSpec (tenant/algorithm
/// strings, workload pointer, start layout) plus engine and cursor — and
/// every round walked all of them, touching each slot's cachelines just to
/// discover `cursor == horizon`.
struct FrozenMuxSlot {
  core::SessionSpec spec;
  std::unique_ptr<mobsrv::alg::Lazy> algo;
  std::unique_ptr<sim::Session> session;
  std::string error;
  std::size_t cursor = 0;
  bool open = true;
};

std::vector<FrozenMuxSlot> make_frozen_soak(const SoakSources& sources, std::size_t sessions) {
  sim::RunOptions options;
  options.record_positions = false;
  std::vector<FrozenMuxSlot> slots(sessions);
  for (std::size_t s = 0; s < sessions; ++s) {
    FrozenMuxSlot& slot = slots[s];
    slot.spec.tenant = "t" + std::to_string(s);
    slot.spec.algorithm = "Lazy";
    slot.spec.workload = soak_instance(sources, s);
    slot.algo = std::make_unique<mobsrv::alg::Lazy>();
    slot.session = std::make_unique<sim::Session>(
        slot.spec.workload->start(), slot.spec.workload->params(), *slot.algo, options);
  }
  return slots;
}

/// One pre-refactor round: visit every open slot, advance the ones with
/// pending steps. Returns how many advanced (0 = drained).
std::size_t frozen_uniform_round(std::vector<FrozenMuxSlot>& slots) {
  std::size_t advanced = 0;
  for (FrozenMuxSlot& slot : slots) {
    if (!slot.open || slot.cursor >= slot.spec.workload->horizon()) continue;
    slot.session->push(slot.spec.workload->step(slot.cursor));
    ++slot.cursor;
    ++advanced;
  }
  return advanced;
}

void fill_soak_mux(core::SessionMultiplexer& mux, const SoakSources& sources,
                   std::size_t sessions) {
  for (std::size_t s = 0; s < sessions; ++s) {
    core::SessionSpec spec;
    spec.workload = soak_instance(sources, s);
    spec.algorithm = "Lazy";
    mux.add(std::move(spec));
  }
}

void BM_MuxSoakUniform(benchmark::State& state, Sizes sizes) {
  const SoakSources sources = make_soak_sources(sizes.soak_horizon);
  double total = 0.0;
  std::vector<FrozenMuxSlot> slots;
  for (auto _ : state) {
    state.PauseTiming();
    slots = make_frozen_soak(sources, sizes.soak_sessions);
    state.ResumeTiming();
    while (frozen_uniform_round(slots) > 0) {
    }
    state.PauseTiming();
    for (const FrozenMuxSlot& slot : slots) total += slot.session->total_cost();
    slots.clear();  // teardown off the clock, like construction
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(total);
  state.counters["steps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(soak_steps(sizes)),
      benchmark::Counter::kIsRate);
  state.counters["sessions"] = static_cast<double>(sizes.soak_sessions);
}

void BM_MuxSoakActive(benchmark::State& state, Sizes sizes) {
  const SoakSources sources = make_soak_sources(sizes.soak_horizon);
  par::ThreadPool pool(1);
  mobsrv::obs::Histogram round_latency;
  double total = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    auto mux = std::make_unique<core::SessionMultiplexer>(pool);
    fill_soak_mux(*mux, sources, sizes.soak_sessions);
    state.ResumeTiming();
    for (;;) {
      const std::uint64_t start = mobsrv::obs::now_ns();
      const std::size_t live = mux->step(1);
      round_latency.record(mobsrv::obs::now_ns() - start);
      if (live == 0) break;
    }
    state.PauseTiming();
    total += mux->totals().total_cost;
    mux.reset();  // teardown off the clock, like construction
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(total);
  state.counters["steps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(soak_steps(sizes)),
      benchmark::Counter::kIsRate);
  state.counters["sessions"] = static_cast<double>(sizes.soak_sessions);
  const mobsrv::obs::HistogramSummary summary = round_latency.summary();
  state.counters["p50_ns"] = static_cast<double>(summary.p50);
  state.counters["p99_ns"] = static_cast<double>(summary.p99);
}

void BM_MuxSoakCkpt(benchmark::State& state, Sizes sizes) {
  const SoakSources sources = make_soak_sources(sizes.soak_horizon);
  par::ThreadPool pool(1);
  std::uint64_t bytes = 0, saves = 0, dirty_records = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto mux = std::make_unique<core::SessionMultiplexer>(pool);
    fill_soak_mux(*mux, sources, sizes.soak_sessions);
    // The base save is taken at admission and stays off the clock — the row
    // measures the incremental steady state, where only hot slots dirty.
    mux->mark_saved();
    std::vector<core::SessionCheckpointRecord> records;
    state.ResumeTiming();
    std::size_t round = 0;
    const auto save_dirty = [&] {
      records.clear();
      for (const std::size_t slot : mux->dirty_slots())
        records.push_back(mux->checkpoint_slot(slot));
      bytes += mobsrv::trace::encode_checkpoint(records).size();
      dirty_records += records.size();
      ++saves;
      mux->mark_saved();
    };
    while (mux->step(1) > 0)
      if (++round % kSoakSaveEvery == 0) save_dirty();
    save_dirty();
    state.PauseTiming();
    mux.reset();  // teardown off the clock, like construction
    state.ResumeTiming();
  }
  state.counters["steps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(soak_steps(sizes)),
      benchmark::Counter::kIsRate);
  state.counters["ckpt_bytes"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kIsRate);
  state.counters["dirty_per_save"] =
      saves == 0 ? 0.0 : static_cast<double>(dirty_records) / static_cast<double>(saves);
  state.counters["sessions"] = static_cast<double>(sizes.soak_sessions);
}

// ---------------------------------------------------------------------------
// Scenario layer (PR 9): scenario files parsed + validated per second over
// the starter corpus, rendered to canonical text once up front. The
// per-second `steps` counter counts files, so perf_diff.py gates this row
// like every other.
// ---------------------------------------------------------------------------

void BM_ScenarioParseCorpus(benchmark::State& state) {
  std::vector<std::string> texts;
  for (const mobsrv::scenario::Scenario& sc : mobsrv::scenario::starter_corpus())
    texts.push_back(mobsrv::scenario::canonical_text(sc));
  std::size_t parsed = 0;
  for (auto _ : state) {
    for (const std::string& text : texts) {
      const mobsrv::scenario::Scenario sc = mobsrv::scenario::parse(text, "<perf>");
      benchmark::DoNotOptimize(sc.seed);
      ++parsed;
    }
  }
  state.counters["steps"] =
      benchmark::Counter(static_cast<double>(parsed), benchmark::Counter::kIsRate);
  state.counters["files"] = static_cast<double>(texts.size());
}

void print_usage(std::ostream& os) {
  os << "usage: mobsrv_perf [--smoke] [--out=PATH] [--benchmark_*...]\n"
        "  --smoke      small workloads + short timings (CI smoke artifact)\n"
        "  --out=PATH   write google-benchmark JSON to PATH\n";
}

}  // namespace

int main(int argc, char** argv) {
  const mobsrv::io::Args args(argc, argv);
  if (args.get_bool("help", false)) {
    print_usage(std::cout);
    return 0;
  }
  // The shared exit discipline: unknown flags, stray positionals and
  // malformed values ("--smoke=maybe") all exit 2 with a message.
  bool smoke = false;
  std::string out_path;
  try {
    mobsrv::io::require_known_flags(args, {"smoke", "out", "benchmark*"});
    mobsrv::io::require_no_positionals(args);
    smoke = args.get_bool("smoke", false);
    out_path = args.get_string("out", "");
  } catch (const mobsrv::ContractViolation& error) {
    return mobsrv::io::usage_error("mobsrv_perf", error.what(), print_usage);
  }
  std::vector<std::string> flags;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) flags.emplace_back(argv[i]);
  if (!out_path.empty()) {
    flags.push_back("--benchmark_out=" + out_path);
    flags.push_back("--benchmark_out_format=json");
  }

  // Full runs size the hot loop well past L2 so the AoS-vs-SoA comparison is
  // a memory-bandwidth statement, not a cache accident; smoke runs just
  // prove the binary and its JSON artifact end-to-end.
  const Sizes sizes =
      smoke ? Sizes{64, 16, 256, 16, 100'000, 256} : Sizes{512, 64, 2048, 64, 1'000'000, 1024};
  const double min_time = smoke ? 0.02 : 0.25;

  for (const int dim : {1, 2, 8}) {
    benchmark::RegisterBenchmark("engine/aos_baseline", BM_AosBaseline, sizes)
        ->Arg(dim)
        ->ArgName("dim")
        ->MinTime(min_time);
    benchmark::RegisterBenchmark("engine/session_soa", BM_SessionSoa, sizes)
        ->Arg(dim)
        ->ArgName("dim")
        ->MinTime(min_time);
    benchmark::RegisterBenchmark("engine/run_wrapper", BM_RunWrapper, sizes)
        ->Arg(dim)
        ->ArgName("dim")
        ->MinTime(min_time);
  }
  for (const int k : {4, 16}) {
    benchmark::RegisterBenchmark("fleet/copy_baseline", BM_FleetCopyBaseline, sizes)
        ->Arg(k)
        ->ArgName("k")
        ->MinTime(min_time);
    benchmark::RegisterBenchmark("fleet/session", BM_FleetSession, sizes)
        ->Arg(k)
        ->ArgName("k")
        ->MinTime(min_time);
  }
  for (const int dim : {1, 2}) {
    benchmark::RegisterBenchmark("solver/descent_aos_baseline", BM_DescentAosBaseline, sizes)
        ->Arg(dim)
        ->ArgName("dim")
        ->MinTime(min_time);
    benchmark::RegisterBenchmark("solver/descent_soa", BM_DescentSoa, sizes)
        ->Arg(dim)
        ->ArgName("dim")
        ->MinTime(min_time);
  }
  benchmark::RegisterBenchmark("solver/grid_dp", BM_GridDp, sizes)->MinTime(min_time);
  for (const int threads : {1, 4}) {
    benchmark::RegisterBenchmark("mux/drain", BM_MuxDrain, sizes)
        ->Arg(threads)
        ->ArgName("threads")
        ->MinTime(min_time)
        ->UseRealTime();
  }
  for (const int tenants : {1, 32}) {
    benchmark::RegisterBenchmark("serve/ingest", BM_ServeIngest, sizes)
        ->Arg(tenants)
        ->ArgName("tenants")
        ->MinTime(min_time)
        ->UseRealTime();
  }
  for (const int lean : {0, 1}) {
    benchmark::RegisterBenchmark("obs/overhead", BM_ObsOverhead, sizes)
        ->Arg(lean)
        ->ArgName("lean")
        ->MinTime(min_time)
        ->UseRealTime();
  }
  benchmark::RegisterBenchmark("serve/ingest_p99", BM_ServeIngestP99, sizes)
      ->Arg(8)
      ->ArgName("tenants")
      ->MinTime(min_time)
      ->UseRealTime();
  for (const int armed : {0, 1}) {
    benchmark::RegisterBenchmark("serve/fault_hook_overhead", BM_FaultHookOverhead, sizes)
        ->Arg(armed)
        ->ArgName("armed")
        ->MinTime(min_time)
        ->UseRealTime();
  }
  benchmark::RegisterBenchmark("engine/step_latency", BM_EngineStepLatency, sizes)
      ->Arg(1)
      ->ArgName("dim")
      ->MinTime(min_time);
  benchmark::RegisterBenchmark("mux/soak_1m_uniform", BM_MuxSoakUniform, sizes)
      ->MinTime(min_time)
      ->UseRealTime();
  benchmark::RegisterBenchmark("mux/soak_1m_active", BM_MuxSoakActive, sizes)
      ->MinTime(min_time)
      ->UseRealTime();
  benchmark::RegisterBenchmark("mux/soak_1m_ckpt", BM_MuxSoakCkpt, sizes)
      ->MinTime(min_time)
      ->UseRealTime();
  benchmark::RegisterBenchmark("scenario/parse_corpus", BM_ScenarioParseCorpus)
      ->MinTime(min_time);

  std::vector<char*> bench_argv{argv[0]};
  for (std::string& flag : flags) bench_argv.push_back(flag.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
