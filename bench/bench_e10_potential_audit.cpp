// E10 — Sections 4.1 & 4.2: the potential-function step inequality
//     C_Alg + Δφ ≤ K(δ)·C_Opt,   K(δ) = O(1/δ^{3/2}),
// audited over millions of sampled configurations spanning every case of
// the paper's analysis (both r > D and r ≤ D regimes).
//
// Reproduction: zero violations at K = 500/δ^{3/2}, plus the *observed*
// worst constant — which shows how loose the proof's constants are.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

MOBSRV_BENCH_EXPERIMENT(e10, "potential-function audit (Theorem 4's engine)") {
  std::cout << "# E10 — potential-function audit (Theorem 4's engine)\n"
            << "Claim: for every configuration and every feasible OPT move, one MtC\n"
            << "step satisfies C_Alg + Δφ ≤ K(δ)·C_Opt with K(δ) = O(1/δ^{3/2}).\n\n";

  const int samples = static_cast<int>(200000 * options.scale) + 2000;

  io::Table table("Potential step audit (violations must be 0)",
                  {"regime", "dim", "delta", "samples", "violations", "K used",
                   "worst observed LHS/C_Opt"});
  for (const bool big_r : {true, false}) {
    for (const int dim : {1, 2}) {
      for (const double delta : {0.25, 0.5, 1.0}) {
        core::PotentialConfig cfg;
        cfg.dim = dim;
        cfg.delta = delta;
        cfg.move_cost_weight = 4.0;
        cfg.requests = big_r ? 16 : 2;  // r > D vs r ≤ D
        stats::Rng rng =
            options.rng("e10", {static_cast<std::uint64_t>(big_r), static_cast<std::uint64_t>(dim),
                                static_cast<std::uint64_t>(delta * 1000)});
        const double k = core::audit_bound(delta);
        int violations = 0;
        double worst = 0.0;
        for (int i = 0; i < samples; ++i) {
          const core::PotentialSample s = core::sample_potential_step(cfg, rng);
          if (!s.holds(k, 1e-6)) ++violations;
          if (s.opt_cost > 1e-9) worst = std::max(worst, s.lhs() / s.opt_cost);
        }
        table.row()
            .cell(big_r ? "r>D" : "r<=D")
            .cell(dim)
            .cell(delta, 3)
            .cell(samples)
            .cell(violations)
            .cell(k, 4)
            .cell(worst, 4)
            .done();
      }
    }
  }
  options.emit(table);
  std::cout << "  note: worst observed constants sit far below K(δ) — the paper's\n"
            << "  case analysis does not optimise constants (it says so explicitly).\n\n";
}

namespace {

void BM_PotentialSample(benchmark::State& state) {
  core::PotentialConfig cfg;
  cfg.dim = static_cast<int>(state.range(0));
  stats::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(core::sample_potential_step(cfg, rng));
}
BENCHMARK(BM_PotentialSample)->Arg(1)->Arg(2);

void BM_Lemma6Sample(benchmark::State& state) {
  stats::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(core::sample_lemma6(2, 0.5, rng));
}
BENCHMARK(BM_Lemma6Sample);

}  // namespace

}  // namespace mobsrv::bench
