// E1 — Theorem 1: without resource augmentation no online algorithm is
// better than Ω(√T/D)-competitive.
//
// Reproduction: run MtC (δ = 0) on the Theorem-1 adversary for growing T
// and several D; the measured ratio C_MtC / C_adversary must grow like √T
// (log-log slope ≈ 0.5) and shrink with D.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

namespace {

core::RatioEstimate measure(const Options& options, std::size_t horizon, double d_weight) {
  core::RatioOptions opt =
      options.ratio_options("e01", {horizon, static_cast<std::uint64_t>(d_weight)});
  opt.speed_factor = 1.0;  // NO augmentation — the point of Theorem 1
  opt.oracle = core::OptOracle::kAdversaryCost;
  return core::estimate_ratio(
      *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
      [horizon, d_weight](std::size_t, stats::Rng& rng) {
        adv::Theorem1Params p;
        p.horizon = horizon;
        p.move_cost_weight = d_weight;
        adv::AdversarialInstance a = adv::make_theorem1(p, rng);
        return core::PreparedSample{std::move(a.instance), a.adversary_cost, {}};
      },
      opt);
}

}  // namespace

MOBSRV_BENCH_EXPERIMENT(e01, "Theorem 1: lower bound Ω(√T/D) without augmentation") {
  std::cout << "# E1 — Theorem 1: lower bound Ω(√T/D) without augmentation\n"
            << "Claim: every online algorithm's ratio grows with √T when it has no\n"
            << "speed advantage; the construction separates server and requests by √T·m.\n\n";

  io::Table table("MtC on the Theorem-1 adversary (ratio = C_MtC / C_adversary)",
                  {"T", "D", "ratio", "online cost", "adversary cost"});
  std::vector<double> horizons, ratios_d1;
  for (const double d_weight : {1.0, 4.0, 16.0}) {
    for (const std::size_t base : {256u, 1024u, 4096u, 16384u}) {
      const std::size_t horizon = options.horizon(base);
      const core::RatioEstimate est = measure(options, horizon, d_weight);
      table.row()
          .cell(horizon)
          .cell(d_weight, 3)
          .cell(mean_pm(est.ratio))
          .cell(est.online_cost.mean(), 4)
          .cell(est.offline_proxy.mean(), 4)
          .done();
      if (d_weight == 1.0) {
        horizons.push_back(static_cast<double>(horizon));
        ratios_d1.push_back(est.ratio.mean());
      }
    }
  }
  options.emit(table);
  check_fit(options, "ratio vs T at D=1 (claim √T ⇒ 0.5)", horizons, ratios_d1, 0.35, 0.65);
  std::cout << "\n";
}

namespace {

void BM_Theorem1Generator(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    stats::Rng rng(++seed);
    adv::Theorem1Params p;
    p.horizon = horizon;
    benchmark::DoNotOptimize(adv::make_theorem1(p, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_Theorem1Generator)->Arg(1024)->Arg(8192);

void BM_MtcOnTheorem1(benchmark::State& state) {
  stats::Rng rng(1);
  adv::Theorem1Params p;
  p.horizon = static_cast<std::size_t>(state.range(0));
  const adv::AdversarialInstance a = adv::make_theorem1(p, rng);
  alg::MoveToCenter mtc;
  for (auto _ : state) benchmark::DoNotOptimize(sim::run(a.instance, mtc));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MtcOnTheorem1)->Arg(1024)->Arg(8192);

}  // namespace

}  // namespace mobsrv::bench
