// E13 — system scaling: throughput of the simulation engine, the parallel
// trial harness, and the core kernels. Pure google-benchmark; the
// reproduction section prints a one-table summary of steps/second so the
// numbers land in bench_output.txt alongside the experiments.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "registry.hpp"

namespace mobsrv::bench {

MOBSRV_BENCH_EXPERIMENT(e13, "engine & harness throughput") {
  std::cout << "# E13 — engine & harness throughput\n\n";

  // Quick wall-clock summary of engine throughput at varying batch size.
  io::Table table("Engine throughput (MtC, 2-D, T = 4096)",
                  {"requests/step", "steps/second"});
  for (const std::size_t r : {1u, 4u, 16u, 64u}) {
    stats::Rng rng = options.rng("e13", {r});
    adv::DriftingHotspotParams p;
    p.horizon = options.horizon(4096);
    p.r_min = r;
    p.r_max = r;
    const sim::Instance inst = adv::make_drifting_hotspot(p, rng);
    alg::MoveToCenter mtc;
    const auto start = std::chrono::steady_clock::now();
    const sim::RunResult res = sim::run(inst, mtc);
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    benchmark::DoNotOptimize(res.total_cost);
    table.row()
        .cell(r)
        .cell(static_cast<double>(inst.horizon()) / elapsed, 4)
        .done();
  }
  options.emit(table);

  // Parallel harness: trials/second with the pool (on a single-core host
  // this documents overhead is negligible rather than speedup).
  io::Table harness("Ratio-estimator throughput (Theorem-1, T = 1024)",
                    {"trials", "wall seconds"});
  for (const int trials : {4, 16}) {
    core::RatioOptions opt = options.ratio_options("e13-harness");
    opt.trials = trials;
    opt.oracle = core::OptOracle::kAdversaryCost;
    const auto start = std::chrono::steady_clock::now();
    const core::RatioEstimate est = core::estimate_ratio(
        *options.pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
        [&](std::size_t, stats::Rng& rng) {
          adv::Theorem1Params p;
          p.horizon = options.horizon(1024);
          adv::AdversarialInstance a = adv::make_theorem1(p, rng);
          return core::PreparedSample{std::move(a.instance), a.adversary_cost, {}};
        },
        opt);
    benchmark::DoNotOptimize(est.ratio.mean());
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    harness.row().cell(trials).cell(elapsed, 3).done();
  }
  options.emit(harness);
  std::cout << "\n";
}

namespace {

void BM_EngineStep(benchmark::State& state) {
  stats::Rng rng(1);
  adv::DriftingHotspotParams p;
  p.horizon = 2048;
  p.dim = static_cast<int>(state.range(1));
  p.r_min = p.r_max = static_cast<std::size_t>(state.range(0));
  const sim::Instance inst = adv::make_drifting_hotspot(p, rng);
  alg::MoveToCenter mtc;
  for (auto _ : state) benchmark::DoNotOptimize(sim::run(inst, mtc));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_EngineStep)->Args({1, 2})->Args({16, 2})->Args({16, 8});

void BM_ParallelFor(benchmark::State& state) {
  par::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::vector<double> out = par::parallel_map<double>(pool, 256, 8, [](std::size_t i) {
      stats::Rng rng({0x9e77ULL, static_cast<std::uint64_t>(i)});
      double acc = 0.0;
      for (int k = 0; k < 500; ++k) acc += rng.normal();
      return acc;
    });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_ParallelFor)->Arg(1)->Arg(2)->Arg(4);

void BM_RngNormal(benchmark::State& state) {
  stats::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

void BM_TrajectoryCost(benchmark::State& state) {
  stats::Rng rng(1);
  adv::DriftingHotspotParams p;
  p.horizon = static_cast<std::size_t>(state.range(0));
  const sim::Instance inst = adv::make_drifting_hotspot(p, rng);
  alg::Lazy lazy;
  const sim::RunResult run = sim::run(inst, lazy);
  for (auto _ : state) benchmark::DoNotOptimize(sim::trajectory_cost(inst, run.positions));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_TrajectoryCost)->Arg(1024)->Arg(8192);

}  // namespace

}  // namespace mobsrv::bench
